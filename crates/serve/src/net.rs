//! The TCP front-end: a length-prefixed line protocol over the live
//! catalog, std-only (hand-rolled threads, following the repo's worker-
//! pool precedent — no async runtime).
//!
//! # Wire protocol
//!
//! Every message (both directions) is a **frame**: the payload's byte
//! length as ASCII decimal, a newline, then exactly that many payload
//! bytes. Commands (client → server), one per frame:
//!
//! * `query [deadline-ms=N] <rule>` — answer a query; the optional
//!   deadline bounds queue wait + compute.
//! * `add-view <rule>` / `drop-view <name>` — online DDL.
//! * `epoch` — current catalog epoch and view count.
//! * `ping` — liveness probe.
//! * `shutdown` — graceful drain: in-flight requests finish, then the
//!   server exits.
//!
//! Responses, one frame per request, first line one of:
//!
//! * `ok epoch=E completeness=L cached=B` + the rendered answer
//!   (queries), or `ok epoch=E views=N invalidated=K revalidated=K`
//!   (DDL), or `ok epoch=E views=N` (`epoch`), or `pong epoch=E`;
//! * `shed reason=R completeness=deadline_exceeded` — admission refused
//!   or the deadline expired in the queue; the request did no work and
//!   the completeness marker says so honestly;
//! * `error code=2 [vp=VPnnn] <message>` — malformed input or an
//!   ill-typed query/view; code mirrors the CLI's exit code for the
//!   same input, and `vp=` carries the diagnostic id when static
//!   analysis produced one. **Errors are answered, never dropped**: a
//!   protocol-level error closes the connection only after the error
//!   frame is written.
//! * `bye` — acknowledging `shutdown`.
//!
//! # Threads
//!
//! `accept_threads` acceptors share the listener (nonblocking accept +
//! short poll, so shutdown never waits on a blocking `accept`); each
//! connection gets a handler thread that parses frames and *offers*
//! query work to the [`AdmissionQueue`](crate::admission); `workers`
//! pipeline workers drain the queue against the catalog's current
//! snapshot. Handlers apply three timeouts: `idle_timeout` (no frame
//! starts — the connection is reaped), `read_timeout` (a started frame
//! stalls), `write_timeout` (a response write stalls).
//!
//! # Fault injection
//!
//! `VIEWPLAN_FAULT=accept|read|write:nth` (see [`crate::fault`]) kills
//! the nth accepted connection / frame read / response write, exactly
//! once — the chaos harness drives clients through these and asserts
//! every request is still accounted for (answered, shed, or failed
//! loudly at the client; never silently dropped).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};
use viewplan_cq::{parse_query, ConjunctiveQuery, Symbol, View};
use viewplan_obs as obs;
use viewplan_obs::budget::FaultPoint;
use viewplan_sync::thread::{self, JoinHandle};
use viewplan_sync::{mpsc, AtomicBool, AtomicU64, Mutex, Ordering};

use crate::admission::AdmissionQueue;
use crate::catalog::LiveCatalog;

/// Network front-end knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Acceptor threads sharing the listener.
    pub accept_threads: usize,
    /// Pipeline workers draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity (waiting requests).
    pub queue_capacity: usize,
    /// A started frame must complete within this.
    pub read_timeout: Duration,
    /// A response write must complete within this.
    pub write_timeout: Duration,
    /// A connection with no frame activity this long is reaped.
    pub idle_timeout: Duration,
    /// Default per-request deadline when the client sends none.
    pub default_deadline: Option<Duration>,
    /// Largest accepted frame payload, bytes.
    pub max_frame: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            accept_threads: 1,
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            default_deadline: None,
            max_frame: 64 * 1024,
        }
    }
}

/// Writes one frame: ASCII decimal payload length, `\n`, payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 12);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<String>> {
    let mut len: usize = 0;
    let mut digits = 0;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 if digits == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            _ => {}
        }
        match byte[0] {
            b'\n' if digits > 0 => break,
            d @ b'0'..=b'9' if digits < 8 => {
                len = len * 10 + usize::from(d - b'0');
                digits += 1;
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad frame header byte 0x{other:02x}"),
                ));
            }
        }
    }
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds max {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not utf-8"))
}

/// One admitted query: the parsed rule plus the channel its handler is
/// blocked on.
struct QueryJob {
    query: ConjunctiveQuery,
    reply: mpsc::Sender<String>,
}

struct Shared {
    catalog: Arc<LiveCatalog>,
    config: NetConfig,
    queue: AdmissionQueue<QueryJob>,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    reaped_idle: AtomicU64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        // ordering: cross-thread stop flag polled by acceptors, workers,
        // and handlers; SeqCst so a shutdown request is totally ordered
        // against the queue close that follows it.
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        // ordering: see shutting_down — the store must not be reordered
        // after queue.close(), or a worker could observe a closed queue
        // while still believing the server is live.
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// A running network server. Dropping it does *not* stop it — call
/// [`NetServer::shutdown`] (or send a `shutdown` frame and
/// [`NetServer::wait`]).
pub struct NetServer {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the acceptor and worker threads.
    pub fn start(
        catalog: Arc<LiveCatalog>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity),
            catalog,
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        let mut acceptors = Vec::new();
        for i in 0..config.accept_threads.max(1) {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            acceptors.push(
                thread::Builder::new()
                    .name(format!("viewplan-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let shared = shared.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("viewplan-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(NetServer {
            shared,
            acceptors,
            workers,
            addr,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        // ordering: monotone tally read for reporting; no other state
        // hangs off its value.
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Idle connections reaped so far.
    pub fn reaped_idle(&self) -> u64 {
        // ordering: monotone tally read for reporting; no other state
        // hangs off its value.
        self.shared.reaped_idle.load(Ordering::Relaxed)
    }

    /// Requests shed so far (admission refusals + queue expiries).
    pub fn shed(&self) -> u64 {
        self.shared.queue.shed_count()
    }

    /// Graceful shutdown: stop accepting, drain admitted work, join
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        self.join_all();
    }

    /// Blocks until a `shutdown` frame (or [`NetServer::shutdown`] from
    /// another thread) stops the server, then joins every thread.
    pub fn wait(&mut self) {
        while !self.shared.shutting_down() {
            thread::sleep(Duration::from_millis(25));
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        for t in self.acceptors.drain(..) {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Handlers exit on their own once they see the shutdown flag
        // (their reads poll it); collect them last.
        let handlers: Vec<_> = self.shared.handlers.lock().drain(..).collect();
        for t in handlers {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // ordering: monotone tally; readers only want a recent
                // count, not synchronization.
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.net_accepted").incr();
                if shared.catalog.faults().fires(FaultPoint::Accept) {
                    // Injected accept fault: the connection dies before
                    // its first frame — clients must see a clean EOF and
                    // retry, never a hang.
                    drop(stream);
                    continue;
                }
                let shared2 = shared.clone();
                let spawned = thread::Builder::new()
                    .name("viewplan-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared2));
                match spawned {
                    Ok(handle) => shared.handlers.lock().push(handle),
                    Err(_) => {
                        // Thread exhaustion: shedding the connection is
                        // the only honest option left.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Outcome of waiting for the next frame to start.
enum Waited {
    Data,
    Eof,
    Idle,
    Shutdown,
}

/// Polls for the first byte of the next frame, enforcing the idle
/// timeout in short slices so the shutdown flag is honored promptly.
fn wait_for_frame(stream: &TcpStream, shared: &Shared) -> Waited {
    let slice =
        Duration::from_millis(50).min(shared.config.idle_timeout.max(Duration::from_millis(1)));
    if stream.set_read_timeout(Some(slice)).is_err() {
        return Waited::Eof;
    }
    let mut waited = Duration::ZERO;
    let mut byte = [0u8; 1];
    loop {
        if shared.shutting_down() {
            return Waited::Shutdown;
        }
        match stream.peek(&mut byte) {
            Ok(0) => return Waited::Eof,
            Ok(_) => return Waited::Data,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                waited += slice;
                if waited >= shared.config.idle_timeout {
                    return Waited::Idle;
                }
            }
            Err(_) => return Waited::Eof,
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        match wait_for_frame(&stream, shared) {
            Waited::Data => {}
            Waited::Idle => {
                // ordering: monotone tally; readers only want a recent
                // count, not synchronization.
                shared.reaped_idle.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.net_reaped_idle").incr();
                return;
            }
            Waited::Eof | Waited::Shutdown => return,
        }
        if stream
            .set_read_timeout(Some(shared.config.read_timeout))
            .is_err()
        {
            return;
        }
        let frame = match read_frame(&mut stream, shared.config.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A malformed header is answered before closing — the
                // client learns why instead of seeing a bare hangup.
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                let _ = write_frame(&mut stream, &format!("error code=2 {e}"));
                return;
            }
            Err(_) => return,
        };
        if shared.catalog.faults().fires(FaultPoint::Read) {
            // Injected read fault: the connection dies after a frame was
            // consumed — the hardest drop for a client to distinguish
            // from success, which is exactly what the retry layer and
            // the chaos accounting must cover.
            return;
        }
        let response = match dispatch(&frame, shared) {
            Dispatch::Reply(r) => r,
            Dispatch::Shutdown => {
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                let _ = write_frame(&mut stream, "bye");
                shared.request_shutdown();
                return;
            }
        };
        if shared.catalog.faults().fires(FaultPoint::Write) {
            // Injected write fault: the answer was computed but never
            // delivered.
            return;
        }
        if stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
        {
            return;
        }
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

enum Dispatch {
    Reply(String),
    Shutdown,
}

fn dispatch(frame: &str, shared: &Arc<Shared>) -> Dispatch {
    let trimmed = frame.trim();
    let (command, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (trimmed, ""),
    };
    let reply = match command {
        "ping" => format!("pong epoch={}", shared.catalog.epoch()),
        "epoch" => {
            let server = shared.catalog.server();
            format!("ok epoch={} views={}", server.epoch(), server.views().len())
        }
        "query" => return Dispatch::Reply(handle_query(rest, shared)),
        "add-view" => match parse_query(rest) {
            Ok(rule) => match shared.catalog.add_view(View { definition: rule }) {
                Ok(outcome) => format!(
                    "ok epoch={} views={} invalidated={} revalidated={}",
                    outcome.epoch, outcome.views, outcome.invalidated, outcome.revalidated
                ),
                Err(msg) => structured_error(&msg),
            },
            Err(e) => format!("error code=2 parse error: {e}"),
        },
        "drop-view" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                "error code=2 usage: drop-view <name>".to_string()
            } else {
                match shared.catalog.drop_view(Symbol::new(rest)) {
                    Ok(outcome) => format!(
                        "ok epoch={} views={} invalidated={} revalidated={}",
                        outcome.epoch, outcome.views, outcome.invalidated, outcome.revalidated
                    ),
                    Err(msg) => structured_error(&msg),
                }
            }
        }
        "shutdown" => return Dispatch::Shutdown,
        other => format!("error code=2 unknown command `{other}`"),
    };
    Dispatch::Reply(reply)
}

/// Parses and validates a `query` payload on the handler thread (cheap;
/// malformed input must never consume a queue slot), then offers it to
/// admission and blocks for the worker's reply.
fn handle_query(rest: &str, shared: &Arc<Shared>) -> String {
    let (deadline_ms, src) = match rest.strip_prefix("deadline-ms=") {
        Some(tail) => match tail.split_once(char::is_whitespace) {
            Some((n, q)) => match n.parse::<u64>() {
                Ok(ms) => (Some(ms), q.trim()),
                Err(_) => return format!("error code=2 bad deadline `{n}`"),
            },
            None => return "error code=2 usage: query [deadline-ms=N] <rule>".to_string(),
        },
        None => (None, rest),
    };
    if src.is_empty() {
        return "error code=2 usage: query [deadline-ms=N] <rule>".to_string();
    }
    let query = match parse_query(src) {
        Ok(q) => q,
        Err(e) => return format!("error code=2 parse error: {e}"),
    };
    if let Err(msg) = shared.catalog.server().validate(&query) {
        return structured_error(&msg);
    }
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.config.default_deadline)
        .map(|d| Instant::now() + d);
    let (tx, rx) = mpsc::channel();
    let job = QueryJob { query, reply: tx };
    if let Err((_, reason)) = shared.queue.offer(job, deadline) {
        return format!(
            "shed reason={} completeness=deadline_exceeded",
            reason.label()
        );
    }
    match rx.recv() {
        Ok(reply) => reply,
        // Unreachable by design (an admitted job is always answered —
        // the queue drains after close), kept as an honest failure
        // rather than a hang.
        Err(_) => "error code=3 internal: worker abandoned the request".to_string(),
    }
}

/// Wraps a validation/DDL error message as a structured wire error,
/// surfacing the `[VPnnn]` diagnostic id as a dedicated field when
/// present.
fn structured_error(msg: &str) -> String {
    if let Some(tail) = msg.strip_prefix('[') {
        if let Some((vp, rest)) = tail.split_once("] ") {
            if vp.starts_with("VP") {
                return format!("error code=2 vp={vp} {rest}");
            }
        }
    }
    // DDL errors carry the same nested shape from the validate gate.
    if let Some((head, tail)) = msg.split_once("[") {
        if let Some((vp, rest)) = tail.split_once("] ") {
            if vp.starts_with("VP") {
                return format!("error code=2 vp={vp} {head}{rest}");
            }
        }
    }
    format!("error code=2 {msg}")
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.take() {
        let reply = if job.expired() {
            // The deadline lapsed in the queue: honest shed, no work.
            shared.queue.record_shed();
            "shed reason=deadline_unmeetable completeness=deadline_exceeded".to_string()
        } else {
            let started = Instant::now();
            let server = shared.catalog.server();
            let mut spec = server.config().budget;
            if let Some(remaining) = job.remaining() {
                spec = spec.clamp_timeout(remaining);
            }
            let out = match server.serve_with_spec(&job.item.query, &spec) {
                Ok(answer) => format!(
                    "ok epoch={} completeness={} cached={}\n{}",
                    answer.epoch,
                    answer.completeness.label(),
                    answer.from_cache,
                    answer.render()
                ),
                Err(e) => format!("error code=2 {e}"),
            };
            shared.queue.complete(started.elapsed());
            out
        };
        // A closed reply channel means the handler's connection died
        // mid-request; the work is simply discarded.
        let _ = job.item.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ServeConfig;
    use viewplan_cq::parse_views;

    fn start_server(config: NetConfig) -> NetServer {
        let views = parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap();
        let catalog = Arc::new(LiveCatalog::new(&views, ServeConfig::default()));
        NetServer::start(catalog, "127.0.0.1:0", config).unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, payload: &str) -> String {
        write_frame(stream, payload).unwrap();
        read_frame(stream, 1 << 20)
            .unwrap()
            .expect("response frame")
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello frame").unwrap();
        assert_eq!(buf, b"11\nhello frame");
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some("hello frame")
        );
        assert_eq!(read_frame(&mut r, 64).unwrap(), None, "clean eof");

        let mut bad = io::Cursor::new(b"xx\npayload".to_vec());
        assert_eq!(
            read_frame(&mut bad, 64).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut oversized = io::Cursor::new(b"999\n".to_vec());
        assert_eq!(
            read_frame(&mut oversized, 64).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn query_ddl_and_control_frames_round_trip() {
        let mut server = start_server(NetConfig::default());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut conn, "ping"), "pong epoch=0");
        assert_eq!(roundtrip(&mut conn, "epoch"), "ok epoch=0 views=2");

        let answer = roundtrip(&mut conn, "query q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)");
        assert!(
            answer.starts_with("ok epoch=0 completeness=complete cached=false\n"),
            "{answer}"
        );
        assert!(answer.contains("q(X, Y) :- v1(X, Z), v2(Z, Y)"), "{answer}");
        let warm = roundtrip(&mut conn, "query q(U, W) :- a(U, T), a(T, T), b(T, W)");
        assert!(
            warm.starts_with("ok epoch=0 completeness=complete cached=true\n"),
            "{warm}"
        );

        let ddl = roundtrip(&mut conn, "add-view v3(A, B) :- b(A, B)");
        assert!(ddl.starts_with("ok epoch=1 views=3"), "{ddl}");
        let ddl = roundtrip(&mut conn, "drop-view v3");
        assert!(ddl.starts_with("ok epoch=2 views=2"), "{ddl}");

        server.shutdown();
    }

    #[test]
    fn errors_are_structured_frames_never_dropped_connections() {
        let mut server = start_server(NetConfig::default());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let bad_arity = roundtrip(&mut conn, "query q(X) :- a(X, X, X)");
        assert!(
            bad_arity.starts_with("error code=2 vp=VP001 "),
            "{bad_arity}"
        );
        let parse = roundtrip(&mut conn, "query q(X) :- ");
        assert!(parse.starts_with("error code=2 parse error:"), "{parse}");
        let unknown = roundtrip(&mut conn, "frobnicate");
        assert!(
            unknown.starts_with("error code=2 unknown command"),
            "{unknown}"
        );
        let dup = roundtrip(&mut conn, "add-view v1(A, B) :- b(A, B)");
        assert!(
            dup.starts_with("error code=2 view `v1` already exists"),
            "{dup}"
        );
        // The connection survived every error above.
        assert_eq!(roundtrip(&mut conn, "ping"), "pong epoch=0");
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_drains_and_stops_the_server() {
        let mut server = start_server(NetConfig::default());
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut conn, "shutdown"), "bye");
        server.wait();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close; a write must fail.
                let mut c = TcpStream::connect(addr).unwrap();
                write_frame(&mut c, "ping").is_err()
                    || read_frame(&mut c, 64).ok().flatten().is_none()
            }
        );
    }

    #[test]
    fn idle_connections_are_reaped() {
        let mut server = start_server(NetConfig {
            idle_timeout: Duration::from_millis(120),
            ..NetConfig::default()
        });
        let conn = TcpStream::connect(server.local_addr()).unwrap();
        let mut deadline = Instant::now() + Duration::from_secs(5);
        while server.reaped_idle() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(server.reaped_idle(), 1, "idle connection reaped");
        // The server itself is still healthy.
        let mut fresh = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut fresh, "ping"), "pong epoch=0");
        drop(conn);
        deadline = Instant::now() + Duration::from_secs(1);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn zero_capacity_queue_sheds_honestly() {
        let mut server = start_server(NetConfig {
            queue_capacity: 1,
            workers: 1,
            default_deadline: Some(Duration::from_millis(1)),
            ..NetConfig::default()
        });
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // With a 1ms default deadline and a fresh EWMA the first request
        // usually computes; either way every response is ok or an honest
        // shed — never silence.
        for _ in 0..4 {
            let r = roundtrip(&mut conn, "query q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)");
            assert!(r.starts_with("ok ") || r.starts_with("shed reason="), "{r}");
            if let Some(rest) = r.strip_prefix("shed ") {
                assert!(
                    rest.contains("completeness=deadline_exceeded"),
                    "sheds carry honest completeness: {r}"
                );
            }
        }
        server.shutdown();
    }
}
