//! Interleaving regression tests for the serving layer's two core
//! concurrency protocols, pinned by the `viewplan-sync` model checker:
//!
//! 1. **Cache contention / single-flight coalescing** — concurrent
//!    requests for the same canonical query elect exactly one leader;
//!    the rest share its published answer. Invariants: one compute per
//!    `(key, epoch)`, `hits + misses == lookups`, every thread gets the
//!    same `Arc` (no torn or duplicated insert).
//! 2. **Epoch publish vs. concurrent readers** — the DDL writer
//!    publishes the new snapshot *before* retargeting the cache, so a
//!    reader never observes a cache hit whose answer belongs to a
//!    different catalog version than its snapshot (no stale-epoch
//!    answer).
//!
//! These run in the standard suite at bounded budgets (small DFS
//! preemption bounds), so `cargo test` exhaustively re-explores every
//! schedule on each run; EXPERIMENTS.md records the measured
//! interleaving counts.

use std::sync::Arc;
use viewplan_containment::{canonicalize, CanonicalQuery};
use viewplan_cq::{parse_query, ConjunctiveQuery};
use viewplan_obs::Completeness;
use viewplan_serve::{CacheProbe, CachedAnswer, RewritingCache};
use viewplan_sync::model;
use viewplan_sync::{AtomicU64, AtomicUsize, Ordering, RwLock};

/// Model executions must be a pure function of the schedule, but global
/// lazy state (the symbol interner, obs counter registration) is
/// initialized on first touch. Parse the fixture query and warm every
/// code path once, single-threaded, before any model runs.
fn fixture() -> (CanonicalQuery, ConjunctiveQuery, Arc<CachedAnswer>) {
    let canonical = canonicalize(&parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap());
    let answer = Arc::new(CachedAnswer {
        rewritings: Vec::new(),
        best: None,
        completeness: Completeness::Complete,
    });
    // Warm-up pass: exercise the exact operations the models run so
    // every OnceLock / lazy registration settles before exploration.
    let cache = RewritingCache::new(16);
    match cache.get_or_join(&canonical.key, 0) {
        CacheProbe::Miss(flight) => flight.publish(canonical.canonical.clone(), answer.clone()),
        CacheProbe::Hit(_) => unreachable!("fresh cache cannot hit"),
    }
    let _ = cache.get(&canonical.key, 0);
    cache.retarget(0, 1, |_, _| true);
    (canonical.key, canonical.canonical, answer)
}

#[test]
fn concurrent_identical_misses_coalesce_onto_one_compute() {
    let (key, canonical, answer) = fixture();
    let report = model::check(&model::Config::dfs(2), move || {
        let cache = Arc::new(RewritingCache::new(16));
        let computes = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = cache.clone();
                let computes = computes.clone();
                let key = key.clone();
                let canonical = canonical.clone();
                let answer = answer.clone();
                model::spawn(move || match cache.get_or_join(&key, 0) {
                    CacheProbe::Hit(value) => value,
                    CacheProbe::Miss(flight) => {
                        computes.fetch_add(1, Ordering::SeqCst);
                        flight.publish(canonical, answer.clone());
                        answer
                    }
                })
            })
            .collect();
        let answers: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert!(
            Arc::ptr_eq(&answers[0], &answers[1]),
            "both requests must observe the same published answer"
        );
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "duplicate misses must coalesce onto exactly one compute"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            2,
            "exactly one hit-or-miss is tallied per lookup"
        );
        assert_eq!(stats.misses, 1, "only the leader counts a miss");
        assert_eq!(stats.hits, 1, "the follower counts a (coalesced) hit");
    });
    eprintln!("model cache_coalesce: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
    assert!(report.exhaustive, "DFS must exhaust the bounded schedules");
}

#[test]
fn aborted_leader_wakes_followers_to_reelect() {
    let (key, canonical, answer) = fixture();
    let report = model::check(&model::Config::dfs(2), move || {
        let cache = Arc::new(RewritingCache::new(16));
        // The quitter abandons its flight without publishing (a compute
        // error or panic); dropping the guard must abort the flight.
        let quitter = {
            let cache = cache.clone();
            let key = key.clone();
            model::spawn(move || {
                if let CacheProbe::Miss(flight) = cache.get_or_join(&key, 0) {
                    drop(flight);
                    true
                } else {
                    false
                }
            })
        };
        let worker = {
            let cache = cache.clone();
            let key = key.clone();
            let canonical = canonical.clone();
            let answer = answer.clone();
            model::spawn(move || match cache.get_or_join(&key, 0) {
                // The quitter never publishes, so a hit is impossible:
                // an aborted flight must loop and re-elect, not serve.
                CacheProbe::Hit(_) => false,
                CacheProbe::Miss(flight) => {
                    flight.publish(canonical, answer);
                    true
                }
            })
        };
        let quit_led = quitter.join().unwrap();
        assert!(
            worker.join().unwrap(),
            "the worker must become leader (never hang, never hit)"
        );
        let stats = cache.stats();
        let expected_misses = if quit_led { 2 } else { 1 };
        assert_eq!(stats.hits + stats.misses, 2);
        assert_eq!(stats.misses, expected_misses);
        assert_eq!(cache.len(), 1, "the worker's answer is resident");
    });
    eprintln!("model cache_abort: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
    assert!(report.exhaustive, "DFS must exhaust the bounded schedules");
}

/// The live catalog's swap protocol, reduced to its synchronization
/// skeleton: a snapshot pointer (`RwLock<Arc<_>>`, as in
/// `LiveCatalog::server`) published *before* the cache is retargeted.
/// The pinned invariant: whenever a reader's `get` hits, the answer is
/// the one computed under the reader's snapshot epoch — never the
/// pre-swap answer through a post-swap snapshot or vice versa.
#[test]
fn readers_never_observe_cross_epoch_answers_during_swap() {
    let (key, canonical, old_answer) = fixture();
    let new_answer = Arc::new(CachedAnswer {
        rewritings: Vec::new(),
        best: None,
        completeness: Completeness::Complete,
    });
    let report = model::check(&model::Config::dfs(2), move || {
        let cache = Arc::new(RewritingCache::new(16));
        cache.insert(key.clone(), canonical.clone(), old_answer.clone(), 0);
        let snapshot = Arc::new(RwLock::new(Arc::new(0u64)));
        let swaps_seen = Arc::new(AtomicU64::new(0));

        let writer = {
            let cache = cache.clone();
            let snapshot = snapshot.clone();
            let key = key.clone();
            let canonical = canonical.clone();
            let new_answer = new_answer.clone();
            model::spawn(move || {
                // Publish first, retarget second — the order swap_to
                // uses. Readers between the two see plain misses (their
                // epoch is new, the entry is old), never stale answers.
                *snapshot.write() = Arc::new(1);
                cache.retarget(0, 1, |_, _| true);
                cache.insert(key, canonical, new_answer, 1);
            })
        };
        let reader = {
            let cache = cache.clone();
            let snapshot = snapshot.clone();
            let key = key.clone();
            let old_answer = old_answer.clone();
            let new_answer = new_answer.clone();
            let swaps_seen = swaps_seen.clone();
            model::spawn(move || {
                let epoch = **snapshot.read();
                if epoch == 1 {
                    swaps_seen.fetch_add(1, Ordering::SeqCst);
                }
                if let Some(hit) = cache.get(&key, epoch) {
                    let expected = if epoch == 0 { &old_answer } else { &new_answer };
                    assert!(
                        Arc::ptr_eq(&hit, expected),
                        "hit at epoch {epoch} must carry that epoch's answer"
                    );
                }
            })
        };
        writer.join();
        reader.join();
        // After the swap settles, epoch-1 readers get the new answer and
        // epoch-0 probes can never hit again.
        assert!(cache.get(&key, 0).is_none(), "pre-swap epoch is dead");
        let settled = cache.get(&key, 1).expect("post-swap answer resident");
        assert!(Arc::ptr_eq(&settled, &new_answer));
    });
    eprintln!("model epoch_swap: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
    assert!(report.exhaustive, "DFS must exhaust the bounded schedules");
}

/// A deeper seeded-random pass over the coalescing protocol with three
/// contending requests — too many schedules for exhaustive DFS in the
/// standard suite, so this samples a fixed pseudo-random slice (the seed
/// pins it; failures replay deterministically from the logged schedule).
#[test]
fn three_way_contention_random_walk() {
    let (key, canonical, answer) = fixture();
    let report = model::check(&model::Config::random(400, 0xC0A1E5CE), move || {
        let cache = Arc::new(RewritingCache::new(16));
        let computes = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let cache = cache.clone();
                let computes = computes.clone();
                let key = key.clone();
                let canonical = canonical.clone();
                let answer = answer.clone();
                model::spawn(move || match cache.get_or_join(&key, 0) {
                    CacheProbe::Hit(value) => value,
                    CacheProbe::Miss(flight) => {
                        computes.fetch_add(1, Ordering::SeqCst);
                        flight.publish(canonical, answer.clone());
                        answer
                    }
                })
            })
            .collect();
        let answers: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert!(answers.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 3);
        assert_eq!(stats.misses, 1);
    });
    eprintln!("model cache_3way: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
}
