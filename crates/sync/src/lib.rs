//! The repo-wide concurrency facade.
//!
//! Every lock, condition variable, atomic, and thread handle used by
//! production code goes through this crate instead of `std::sync` /
//! `std::thread` / `parking_lot` directly (enforced by the `xtask`
//! raw-sync lint). The facade buys three things:
//!
//! 1. **One poisoning policy.** All locks recover from poisoning via
//!    `PoisonError::into_inner` — a panicking holder never wedges the
//!    process, matching the repo's prior parking_lot usage and the
//!    admission queue's hand-rolled recovery.
//! 2. **Model-checkable protocols.** Inside [`model::check`], every
//!    facade operation is an instrumented *yield point*: a deterministic
//!    scheduler serializes the model's threads and explores their
//!    interleavings (DFS with a bounded-preemption cap, or seeded random
//!    for larger models). Production code pays one thread-local lookup
//!    per operation when no model is running.
//! 3. **A single audit surface.** Atomic-ordering sites, nested lock
//!    acquisitions, and raw-primitive escapes are all greppable and
//!    lintable in one place.
//!
//! **What the checker does and does not explore.** The scheduler
//! serializes model threads, so it explores all *sequentially
//! consistent* interleavings up to the preemption bound. It does not
//! model weak-memory reorderings — `Ordering::Relaxed` bugs that only
//! manifest as reordered loads/stores are out of scope (that is what the
//! `// ordering:` justification lint and the graceful-skip TSan CI step
//! are for). Spurious condvar wakeups are not injected, and `notify_one`
//! deterministically wakes the lowest-id waiter.
//!
//! The `thread` and `mpsc` modules are plain passthroughs: they exist so
//! the raw-sync ban has a single funnel, but they are **not**
//! model-instrumented. Model programs spawn threads with
//! [`model::spawn`] and communicate through facade locks and atomics.

pub use std::sync::atomic::Ordering;

/// Channel passthrough (not model-instrumented): models communicate
/// through facade locks/atomics, production code may use channels.
pub mod mpsc {
    pub use std::sync::mpsc::*;
}

/// Thread passthrough (not model-instrumented): inside [`model::check`]
/// use [`model::spawn`] instead.
pub mod thread {
    pub use std::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
        ScopedJoinHandle,
    };
}

pub mod model;

use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::RwLockWriteGuard as StdWriteGuard;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{PoisonError, TryLockError};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard as StdReadGuard};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual-exclusion lock: `std::sync::Mutex` with parking_lot-style
/// ergonomics (no `Result`, poisoning recovered) and model-checker
/// instrumentation.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex (usable in statics).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    /// Acquires the lock, blocking until it is free. Under a model, the
    /// acquisition is a scheduler decision point and blocking yields to
    /// the other model threads instead of parking the OS thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if model::in_model() {
            loop {
                model::step();
                match self.inner.try_lock() {
                    Ok(inner) => {
                        return MutexGuard {
                            lock: self,
                            inner: ManuallyDrop::new(inner),
                        }
                    }
                    Err(TryLockError::Poisoned(poisoned)) => {
                        return MutexGuard {
                            lock: self,
                            inner: ManuallyDrop::new(poisoned.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => model::block_on_lock(self.addr()),
                }
            }
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        model::step();
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(inner),
            }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex::lock`]; releasing notifies the model
/// scheduler so blocked model threads become runnable.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let addr = self.lock.addr();
        // SAFETY: the inner guard is dropped exactly once — here; the
        // ManuallyDrop wrapper exists so the release hook below runs
        // strictly after the OS-level unlock.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        model::on_release(addr);
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// A condition variable paired with the facade [`Mutex`]. Under a model,
/// waiting releases the mutex and deschedules the thread atomically (no
/// other model thread runs in between), and notification wakes the
/// lowest-id waiter deterministically.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// A new condition variable (usable in statics).
    pub const fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Releases `guard`'s mutex and blocks until notified, then
    /// reacquires the mutex. As with any condvar, callers must re-check
    /// their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        if model::in_model() {
            // Release-and-block is atomic from the other threads'
            // perspective: no yield point separates the drop from the
            // deschedule, so a notification cannot be lost in between.
            drop(guard);
            model::block_on_condvar(self.addr());
            return lock.lock();
        }
        let mut outer = ManuallyDrop::new(guard);
        // SAFETY: the inner guard moves into `wait` and the wrapper is
        // never dropped, so the guard is consumed exactly once.
        let inner = unsafe { ManuallyDrop::take(&mut outer.inner) };
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock,
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Wakes one waiter (the lowest-id model thread under a model).
    pub fn notify_one(&self) {
        if model::in_model() {
            model::step();
            model::notify_condvar(self.addr(), false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if model::in_model() {
            model::step();
            model::notify_condvar(self.addr(), true);
            return;
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock: `std::sync::RwLock` with poisoning recovered
/// and model-checker instrumentation. Blocked readers and writers share
/// one wait set per lock (wakeups on any release re-attempt the
/// acquisition, which is conservative but complete).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock (usable in statics).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        self as *const RwLock<T> as *const () as usize
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if model::in_model() {
            loop {
                model::step();
                match self.inner.try_read() {
                    Ok(inner) => {
                        return RwLockReadGuard {
                            lock: self,
                            inner: ManuallyDrop::new(inner),
                        }
                    }
                    Err(TryLockError::Poisoned(poisoned)) => {
                        return RwLockReadGuard {
                            lock: self,
                            inner: ManuallyDrop::new(poisoned.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => model::block_on_lock(self.addr()),
                }
            }
        }
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            lock: self,
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if model::in_model() {
            loop {
                model::step();
                match self.inner.try_write() {
                    Ok(inner) => {
                        return RwLockWriteGuard {
                            lock: self,
                            inner: ManuallyDrop::new(inner),
                        }
                    }
                    Err(TryLockError::Poisoned(poisoned)) => {
                        return RwLockWriteGuard {
                            lock: self,
                            inner: ManuallyDrop::new(poisoned.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => model::block_on_lock(self.addr()),
                }
            }
        }
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            lock: self,
            inner: ManuallyDrop::new(inner),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        model::step();
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard {
                lock: self,
                inner: ManuallyDrop::new(inner),
            }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                lock: self,
                inner: ManuallyDrop::new(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        model::step();
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard {
                lock: self,
                inner: ManuallyDrop::new(inner),
            }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                lock: self,
                inner: ManuallyDrop::new(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<StdReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let addr = self.lock.addr();
        // SAFETY: dropped exactly once; see MutexGuard::drop.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        model::on_release(addr);
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<StdWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let addr = self.lock.addr();
        // SAFETY: dropped exactly once; see MutexGuard::drop.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        model::on_release(addr);
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! int_atomic {
    ($(#[$meta:meta])* $name:ident, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name(std::sync::atomic::$name);

        impl $name {
            /// A new atomic (usable in statics and consts).
            pub const fn new(value: $prim) -> $name {
                $name(std::sync::atomic::$name::new(value))
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                model::step();
                self.0.load(order)
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, order: Ordering) {
                model::step();
                self.0.store(value, order)
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                model::step();
                self.0.swap(value, order)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                model::step();
                self.0.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                model::step();
                self.0.fetch_sub(value, order)
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                model::step();
                self.0.fetch_min(value, order)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                model::step();
                self.0.fetch_max(value, order)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                model::step();
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Atomic read-modify-write loop; `f` returning `None` aborts.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                model::step();
                self.0.fetch_update(set_order, fetch_order, f)
            }
        }
    };
}

int_atomic! {
    /// Facade `AtomicU8`: each operation is a model yield point.
    AtomicU8, u8
}
int_atomic! {
    /// Facade `AtomicU64`: each operation is a model yield point.
    AtomicU64, u64
}
int_atomic! {
    /// Facade `AtomicUsize`: each operation is a model yield point.
    AtomicUsize, usize
}

/// Facade `AtomicBool`: each operation is a model yield point.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// A new atomic flag (usable in statics and consts).
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool(std::sync::atomic::AtomicBool::new(value))
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        model::step();
        self.0.load(order)
    }

    /// Atomic store.
    pub fn store(&self, value: bool, order: Ordering) {
        model::step();
        self.0.store(value, order)
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        model::step();
        self.0.swap(value, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips_and_try_lock_contends() {
        let m = Mutex::new(7u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock refuses try_lock");
        }
        assert_eq!(*m.lock(), 8);
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn rwlock_allows_shared_readers() {
        let l = RwLock::new(1u32);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 2);
        assert!(l.try_write().is_none(), "readers block the writer");
        drop((r1, r2));
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn condvar_wakes_a_real_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(3u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison on purpose");
        })
        .join();
        assert_eq!(*m.lock(), 3, "poisoned mutex still readable");
    }

    #[test]
    fn atomics_delegate() {
        let a = AtomicU64::new(10);
        assert_eq!(a.fetch_add(5, Ordering::SeqCst), 10);
        assert_eq!(a.fetch_min(7, Ordering::SeqCst), 15);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
    }
}
