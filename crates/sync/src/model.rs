//! A miniature loom/CHESS-style interleaving model checker.
//!
//! [`check`] runs a closure (the *model*) many times. Each run spawns
//! real OS threads via [`spawn`], but a step-lock scheduler admits
//! exactly one model thread at a time: every facade operation (lock,
//! unlock, condvar wait/notify, atomic access) is a *yield point* where
//! the running thread parks and the scheduler picks who runs next. A
//! model is therefore a deterministic function of its schedule, and the
//! explorer enumerates schedules:
//!
//! * **DFS with a bounded-preemption cap** (the CHESS insight: most
//!   concurrency bugs need only 1–2 preemptions). The scheduler prefers
//!   to keep the current thread running; switching away from a thread
//!   that could continue costs one preemption against the bound.
//!   Context switches forced by blocking are free. With a small model
//!   this exhausts every schedule up to the bound.
//! * **Seeded random walk** for models too large to exhaust: uniform
//!   choices from a deterministic LCG, reproducible per seed.
//!
//! A panic in any model thread (assertion failure), a deadlock (all
//! live threads blocked), or a step-limit overrun aborts the run and is
//! reported as a [`Failure`] carrying the exact thread schedule that
//! produced it — the schedule *is* the bug reproduction.
//!
//! **Scope.** Exploration is sequentially consistent: weak-memory
//! reorderings are not modeled. Model state must be constructed inside
//! the closure (fresh per execution) and the model must be deterministic
//! given a schedule — no wall-clock branching, no RNG.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

// ---------------------------------------------------------------------
// Shared execution state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// May be scheduled.
    Runnable,
    /// Waiting for the lock at this address to be released.
    Lock(usize),
    /// Waiting for a notification on the condvar at this address.
    Condvar(usize),
    /// Waiting for this thread id to finish.
    Join(usize),
    /// Ran to completion (or unwound).
    Finished,
}

struct ExecState {
    /// The single thread currently admitted to run (`None` while the
    /// controller is deciding).
    running: Option<usize>,
    status: Vec<Status>,
    /// Chosen thread id per step — the reproduction recipe.
    schedule: Vec<usize>,
    failure: Option<String>,
    /// Set on failure/deadlock: every parked thread unwinds and exits.
    abort: bool,
}

struct Shared {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            state: StdMutex::new(ExecState {
                running: None,
                status: Vec::new(),
                schedule: Vec::new(),
                failure: None,
                abort: false,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether the current thread is a scheduled model thread.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Unwind payload used to wind model threads down after an abort;
/// swallowed by the thread wrapper, never reported.
struct ModelAbort;

/// Parks the calling model thread with `status` and blocks until the
/// controller schedules it again (its status back to `Runnable` and the
/// running token assigned to it).
fn park(shared: &Shared, id: usize, status: Status) {
    let mut st = shared.lock();
    st.status[id] = status;
    st.running = None;
    shared.cv.notify_all();
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(ModelAbort);
        }
        if st.running == Some(id) {
            return;
        }
        st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// First admission of a freshly spawned thread: unlike [`park`] it must
/// not touch the running token — the spawner still holds it.
fn wait_first_admission(shared: &Shared, id: usize) {
    let mut st = shared.lock();
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(ModelAbort);
        }
        if st.running == Some(id) {
            return;
        }
        st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// A yield point: outside a model this is a no-op; inside, the thread
/// offers the scheduler a decision point and waits to be re-admitted.
pub(crate) fn step() {
    if let Some(ctx) = ctx() {
        park(&ctx.shared, ctx.id, Status::Runnable);
    }
}

/// Blocks the calling model thread until the lock at `addr` is released.
pub(crate) fn block_on_lock(addr: usize) {
    if let Some(ctx) = ctx() {
        park(&ctx.shared, ctx.id, Status::Lock(addr));
    }
}

/// Blocks the calling model thread until the condvar at `addr` is
/// notified.
pub(crate) fn block_on_condvar(addr: usize) {
    if let Some(ctx) = ctx() {
        park(&ctx.shared, ctx.id, Status::Condvar(addr));
    }
}

/// Marks threads blocked on the lock at `addr` runnable (they re-attempt
/// the acquisition when scheduled).
pub(crate) fn on_release(addr: usize) {
    if let Some(ctx) = ctx() {
        let mut st = ctx.shared.lock();
        for status in st.status.iter_mut() {
            if *status == Status::Lock(addr) {
                *status = Status::Runnable;
            }
        }
    }
}

/// Wakes waiters of the condvar at `addr`: all of them, or
/// deterministically the lowest-id one.
pub(crate) fn notify_condvar(addr: usize, all: bool) {
    if let Some(ctx) = ctx() {
        let mut st = ctx.shared.lock();
        for status in st.status.iter_mut() {
            if *status == Status::Condvar(addr) {
                *status = Status::Runnable;
                if !all {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Model threads
// ---------------------------------------------------------------------

/// Handle to a thread spawned with [`spawn`].
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<StdMutex<Option<T>>>,
    shared: Option<Arc<Shared>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`None` if
    /// it panicked — the panic itself is already recorded as the run's
    /// failure).
    // lock-order: scheduler state lock, then (after it is released by the
    // scope's end) the result slot — never both at once; `park` re-takes
    // the state lock only after this scope's guard is dropped.
    pub fn join(self) -> Option<T> {
        if let (Some(shared), Some(ctx)) = (self.shared.as_ref(), ctx()) {
            loop {
                let finished = { shared.lock().status[self.id] == Status::Finished };
                if finished {
                    break;
                }
                park(shared, ctx.id, Status::Join(self.id));
            }
        }
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Runs `body` as model thread `id`: installs the scheduler context,
/// waits for its first admission, and records panics as the run failure.
fn run_model_thread(shared: Arc<Shared>, id: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: shared.clone(),
            id,
        })
    });
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        // First admission: a spawned thread is runnable immediately but
        // runs only when scheduled.
        let Some(ctx) = ctx() else { return };
        wait_first_admission(&ctx.shared, ctx.id);
        body();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = shared.lock();
    if let Err(payload) = outcome {
        if payload.downcast_ref::<ModelAbort>().is_none() && st.failure.is_none() {
            st.failure = Some(panic_message(payload.as_ref()));
            st.abort = true;
        }
    }
    st.status[id] = Status::Finished;
    for status in st.status.iter_mut() {
        if *status == Status::Join(id) {
            *status = Status::Runnable;
        }
    }
    st.running = None;
    shared.cv.notify_all();
}

/// Spawns a model thread. Must be called from inside a model (the
/// [`check`] closure or another model thread); outside a model the
/// closure runs inline, so shared test helpers stay usable.
// lock-order: scheduler state, result slot, and the handle registry are
// each taken and released in sequence (every guard is a temporary in its
// own statement); no two of them are ever held together.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(ctx) = ctx() else {
        let result = Arc::new(StdMutex::new(Some(f())));
        return JoinHandle {
            id: usize::MAX,
            result,
            shared: None,
        };
    };
    // Spawning is itself a visible effect: give the scheduler a
    // decision point before the new thread becomes runnable.
    step();
    let shared = ctx.shared.clone();
    let id = {
        let mut st = shared.lock();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    };
    let result = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let thread_shared = shared.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("vp-model-{id}"))
        .spawn(move || {
            run_model_thread(thread_shared.clone(), id, move || {
                let value = f();
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            });
        });
    match spawned {
        Ok(handle) => shared
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle),
        Err(_) => {
            // OS thread exhaustion: mark the slot finished so the run
            // fails by assertion (missing result) instead of hanging.
            shared.lock().status[id] = Status::Finished;
        }
    }
    JoinHandle {
        id,
        result,
        shared: Some(shared),
    }
}

// ---------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------

/// Exploration parameters; build with [`Config::dfs`] or
/// [`Config::random`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum scheduler-forced switches away from a runnable thread
    /// (DFS mode; random mode ignores it).
    pub preemption_bound: u32,
    /// Safety cap on executions; hitting it marks the report
    /// non-exhaustive.
    pub max_executions: u64,
    /// Safety cap on scheduler steps per execution (livelock guard).
    pub max_steps: usize,
    /// `Some((iterations, seed))` switches to the random-walk explorer.
    pub random: Option<(u64, u64)>,
}

impl Config {
    /// Exhaustive DFS up to `preemption_bound` preemptions.
    pub fn dfs(preemption_bound: u32) -> Config {
        Config {
            preemption_bound,
            max_executions: 500_000,
            max_steps: 20_000,
            random: None,
        }
    }

    /// Seeded random walk of `iterations` executions.
    pub fn random(iterations: u64, seed: u64) -> Config {
        Config {
            preemption_bound: u32::MAX,
            max_executions: iterations,
            max_steps: 20_000,
            random: Some((iterations, seed)),
        }
    }

    /// Overrides the execution cap.
    pub fn executions(mut self, n: u64) -> Config {
        self.max_executions = n;
        self
    }
}

/// One schedule that violated an invariant (assertion panic), deadlocked,
/// or overran the step limit.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic/deadlock message.
    pub message: String,
    /// Thread id chosen at each scheduler step — replaying these choices
    /// reproduces the bug deterministically.
    pub schedule: Vec<usize>,
}

/// The result of [`check`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions (interleavings) explored.
    pub executions: u64,
    /// True when DFS exhausted every schedule within the preemption
    /// bound (always false for random mode and after a failure).
    pub exhaustive: bool,
    /// Longest execution seen, in scheduler steps.
    pub max_steps: usize,
    /// The first invariant violation found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// True when no schedule violated an invariant.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// One-line summary for EXPERIMENTS-style tables.
    pub fn summary(&self) -> String {
        format!(
            "{} execution(s), {} max steps, {}{}",
            self.executions,
            self.max_steps,
            if self.exhaustive {
                "exhaustive"
            } else {
                "bounded"
            },
            match &self.failure {
                Some(f) => format!(", FAILED: {} @ {:?}", f.message, f.schedule),
                None => String::new(),
            }
        )
    }
}

/// One DFS decision point: the candidate threads in trial order and the
/// index currently being replayed.
struct Decision {
    candidates: Vec<usize>,
    next: usize,
}

enum Explorer {
    Dfs {
        stack: Vec<Decision>,
    },
    Random {
        rng: u64,
        done: u64,
        iterations: u64,
    },
}

impl Explorer {
    fn new(config: &Config) -> Explorer {
        match config.random {
            Some((iterations, seed)) => Explorer::Random {
                // Same scramble as splitmix64 seeding so seed 0 works.
                rng: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
                done: 0,
                iterations,
            },
            None => Explorer::Dfs { stack: Vec::new() },
        }
    }

    /// Picks the thread to run at `step`. Replays the DFS prefix, then
    /// extends with the non-preemptive default first. Returns `None` if
    /// the replayed choice is no longer enabled (a nondeterministic
    /// model).
    fn choose(
        &mut self,
        step: usize,
        enabled: &[usize],
        prev: Option<usize>,
        preemptions: &mut u32,
        config: &Config,
    ) -> Option<usize> {
        let prev_enabled = prev.is_some_and(|p| enabled.contains(&p));
        let chosen = match self {
            Explorer::Dfs { stack } => {
                if step < stack.len() {
                    let decision = &stack[step];
                    let c = decision.candidates[decision.next];
                    if !enabled.contains(&c) {
                        return None;
                    }
                    c
                } else {
                    let candidates = match (prev, prev_enabled) {
                        (Some(p), true) => {
                            let mut cs = vec![p];
                            if *preemptions < config.preemption_bound {
                                cs.extend(enabled.iter().copied().filter(|&e| e != p));
                            }
                            cs
                        }
                        _ => enabled.to_vec(),
                    };
                    let c = candidates[0];
                    stack.push(Decision {
                        candidates,
                        next: 0,
                    });
                    c
                }
            }
            Explorer::Random { rng, .. } => {
                let pool: Vec<usize> = match (prev, prev_enabled) {
                    (Some(p), true) if *preemptions >= config.preemption_bound => vec![p],
                    _ => enabled.to_vec(),
                };
                *rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                pool[((*rng >> 33) as usize) % pool.len()]
            }
        };
        if let Some(p) = prev {
            if prev_enabled && chosen != p {
                *preemptions += 1;
            }
        }
        Some(chosen)
    }

    /// Advances to the next schedule. Returns false when exploration is
    /// complete (DFS exhausted or random iterations spent).
    fn advance(&mut self) -> bool {
        match self {
            Explorer::Dfs { stack } => {
                while let Some(top) = stack.last_mut() {
                    top.next += 1;
                    if top.next < top.candidates.len() {
                        return true;
                    }
                    stack.pop();
                }
                false
            }
            Explorer::Random {
                done, iterations, ..
            } => {
                *done += 1;
                *done < *iterations
            }
        }
    }
}

struct ExecOutcome {
    steps: usize,
    failure: Option<Failure>,
}

// lock-order: scheduler state, then handle registry — in sequence, each
// guard dropped before the next acquisition; the scheduling loop holds
// only the state lock, releasing it across every condvar wait.
fn run_one<F>(config: &Config, explorer: &mut Explorer, f: Arc<F>) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let shared = Arc::new(Shared::new());
    shared.lock().status.push(Status::Runnable);
    let thread_shared = shared.clone();
    let spawned = std::thread::Builder::new()
        .name("vp-model-0".to_string())
        .spawn(move || run_model_thread(thread_shared.clone(), 0, move || f()));
    match spawned {
        Ok(handle) => shared
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle),
        Err(e) => {
            return ExecOutcome {
                steps: 0,
                failure: Some(Failure {
                    message: format!("could not spawn model thread: {e}"),
                    schedule: Vec::new(),
                }),
            }
        }
    }

    let mut prev: Option<usize> = None;
    let mut preemptions = 0u32;
    let mut steps = 0usize;
    let failure: Option<Failure>;
    loop {
        let mut st = shared.lock();
        while st.running.is_some() {
            st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort || st.failure.is_some() {
            failure = st.failure.take().map(|message| Failure {
                message,
                schedule: st.schedule.clone(),
            });
            st.abort = true;
            shared.cv.notify_all();
            break;
        }
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        let alive = st.status.iter().any(|s| *s != Status::Finished);
        if !alive {
            failure = None;
            break;
        }
        if enabled.is_empty() {
            failure = Some(Failure {
                message: "deadlock: every live thread is blocked".to_string(),
                schedule: st.schedule.clone(),
            });
            st.abort = true;
            shared.cv.notify_all();
            break;
        }
        if steps >= config.max_steps {
            failure = Some(Failure {
                message: format!("step limit {} exceeded (livelock?)", config.max_steps),
                schedule: st.schedule.clone(),
            });
            st.abort = true;
            shared.cv.notify_all();
            break;
        }
        let Some(choice) = explorer.choose(steps, &enabled, prev, &mut preemptions, config) else {
            failure = Some(Failure {
                message: "nondeterministic model: replayed choice not enabled".to_string(),
                schedule: st.schedule.clone(),
            });
            st.abort = true;
            shared.cv.notify_all();
            break;
        };
        st.schedule.push(choice);
        st.running = Some(choice);
        prev = Some(choice);
        steps += 1;
        shared.cv.notify_all();
    }
    // Wind-down: every surviving thread sees `abort`, unwinds, and
    // exits; join them before the next execution reuses global state.
    let handles: Vec<_> = shared
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect();
    for handle in handles {
        let _ = handle.join();
    }
    ExecOutcome { steps, failure }
}

/// Installs (once per process) a panic hook that stays quiet for model
/// threads: their panics are captured and reported as [`Failure`]s, so
/// the default backtrace spew would only be noise.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                previous(info);
            }
        }));
    });
}

/// Explores interleavings of the model `f` under `config`. `f` is run
/// once per schedule; it must construct all model state itself (fresh
/// per execution) and spawn its threads with [`spawn`].
pub fn check<F>(config: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    let f = Arc::new(f);
    let mut explorer = Explorer::new(config);
    let mut report = Report {
        executions: 0,
        exhaustive: false,
        max_steps: 0,
        failure: None,
    };
    loop {
        let outcome = run_one(config, &mut explorer, f.clone());
        report.executions += 1;
        report.max_steps = report.max_steps.max(outcome.steps);
        if outcome.failure.is_some() {
            report.failure = outcome.failure;
            return report;
        }
        if !explorer.advance() {
            report.exhaustive = config.random.is_none();
            return report;
        }
        if report.executions >= report_cap(config) {
            return report;
        }
    }
}

fn report_cap(config: &Config) -> u64 {
    config.max_executions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicU64, Condvar, Mutex, Ordering};

    #[test]
    fn finds_the_lost_update_race() {
        // Classic non-atomic read-modify-write: two threads load, then
        // store load+1. Some interleaving loses one update.
        let report = check(&Config::dfs(2), || {
            let counter = Arc::new(AtomicU64::new(0));
            let t1 = {
                let c = counter.clone();
                spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            };
            let t2 = {
                let c = counter.clone();
                spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            };
            t1.join();
            t2.join();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("the race must be found");
        assert!(failure.message.contains("lost update"), "{failure:?}");
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn mutex_protects_the_update() {
        let report = check(&Config::dfs(2), || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        let mut g = c.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.ok(), "{}", report.summary());
        assert!(report.exhaustive);
        assert!(report.executions > 1, "more than one interleaving explored");
    }

    #[test]
    fn fetch_add_is_atomic() {
        let report = check(&Config::dfs(2), || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
        assert!(report.ok(), "{}", report.summary());
        assert!(report.exhaustive);
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let report = check(&Config::dfs(2), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t1 = {
                let (a, b) = (a.clone(), b.clone());
                spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            let t2 = {
                let (a, b) = (a.clone(), b.clone());
                spawn(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                })
            };
            t1.join();
            t2.join();
        });
        let failure = report.failure.expect("AB/BA deadlock must be found");
        assert!(failure.message.contains("deadlock"), "{failure:?}");
    }

    #[test]
    fn condvar_handoff_with_predicate_never_hangs() {
        // The canonical correct pattern: predicate re-checked under the
        // lock. Exhaustively, no schedule loses the wakeup.
        let report = check(&Config::dfs(2), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let consumer = {
                let pair = pair.clone();
                spawn(move || {
                    let (m, cv) = &*pair;
                    let mut ready = m.lock();
                    while !*ready {
                        ready = cv.wait(ready);
                    }
                })
            };
            let producer = {
                let pair = pair.clone();
                spawn(move || {
                    let (m, cv) = &*pair;
                    *m.lock() = true;
                    cv.notify_one();
                })
            };
            producer.join();
            consumer.join();
        });
        assert!(report.ok(), "{}", report.summary());
        assert!(report.exhaustive);
    }

    #[test]
    fn condvar_without_predicate_loses_the_wakeup() {
        // Broken pattern: wait unconditionally. The schedule where the
        // producer notifies before the consumer waits deadlocks.
        let report = check(&Config::dfs(2), || {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let consumer = {
                let pair = pair.clone();
                spawn(move || {
                    let (m, cv) = &*pair;
                    let guard = m.lock();
                    drop(cv.wait(guard));
                })
            };
            let producer = {
                let pair = pair.clone();
                spawn(move || {
                    let (_, cv) = &*pair;
                    cv.notify_one();
                })
            };
            producer.join();
            consumer.join();
        });
        let failure = report.failure.expect("lost wakeup must deadlock");
        assert!(failure.message.contains("deadlock"), "{failure:?}");
    }

    #[test]
    fn rwlock_readers_share_and_writer_excludes() {
        let report = check(&Config::dfs(2), || {
            let lock = Arc::new(crate::RwLock::new(0u64));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let l = lock.clone();
                    spawn(move || {
                        let v = *l.read();
                        assert!(v == 0 || v == 7, "torn or partial write seen: {v}");
                    })
                })
                .collect();
            let writer = {
                let l = lock.clone();
                spawn(move || {
                    *l.write() = 7;
                })
            };
            for r in readers {
                r.join();
            }
            writer.join();
        });
        assert!(report.ok(), "{}", report.summary());
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let model = || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 3);
        };
        let a = check(&Config::random(20, 42), model);
        let b = check(&Config::random(20, 42), model);
        assert!(a.ok() && b.ok());
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.max_steps, b.max_steps);
    }

    #[test]
    fn preemption_bound_zero_still_runs_every_thread() {
        // With zero preemptions the scheduler switches only when the
        // current thread blocks or finishes; those forced switches still
        // branch over which thread runs next, so several (but far fewer)
        // schedules are explored.
        let report = check(&Config::dfs(0), || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        *c.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 3);
        });
        assert!(report.ok(), "{}", report.summary());
        assert!(report.exhaustive);
        let bounded = check(&Config::dfs(2), || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        *c.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 3);
        });
        assert!(
            report.executions < bounded.executions,
            "bound 0 ({}) must prune against bound 2 ({})",
            report.executions,
            bounded.executions
        );
    }

    #[test]
    fn execution_cap_marks_report_non_exhaustive() {
        let report = check(&Config::dfs(2).executions(2), || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        assert!(report.ok());
        assert_eq!(report.executions, 2);
        assert!(!report.exhaustive);
    }
}
