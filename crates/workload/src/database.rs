//! Random database generation for the M2/M3 cost experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol};

// The engine types are deliberately *not* a dependency of this crate's
// manifest — the generator emits plain `(name, rows)` pairs so callers in
// any crate can load them into whatever store they use.

/// A generated base relation: its name and integer rows.
pub type GeneratedRelation = (Symbol, Vec<Vec<i64>>);

/// Generates `rows` random integer tuples over `0..domain` for every base
/// relation mentioned in the query body, deterministically in the seed.
/// Skewing `domain` relative to `rows` controls join selectivity: a small
/// domain makes joins explode, a large one makes them sparse.
pub fn random_database(
    query: &ConjunctiveQuery,
    rows: usize,
    domain: i64,
    seed: u64,
) -> Vec<GeneratedRelation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<GeneratedRelation> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for atom in &query.body {
        if !seen.insert(atom.predicate) {
            continue;
        }
        out.push((atom.predicate, random_rows(atom, rows, domain, &mut rng)));
    }
    out
}

fn random_rows(atom: &Atom, rows: usize, domain: i64, rng: &mut StdRng) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|_| {
            (0..atom.arity())
                .map(|_| rng.gen_range(0..domain.max(1)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn generates_one_relation_per_distinct_predicate() {
        let q = parse_query("q(X) :- r(X, Y), s(Y, Z), r(Z, X)").unwrap();
        let rels = random_database(&q, 10, 100, 1);
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0].0, Symbol::new("r"));
        assert_eq!(rels[0].1.len(), 10);
        assert_eq!(rels[0].1[0].len(), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let q = parse_query("q(X) :- r(X, Y)").unwrap();
        let a = random_database(&q, 5, 50, 7);
        let b = random_database(&q, 5, 50, 7);
        assert_eq!(a, b);
        let c = random_database(&q, 5, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn domain_bounds_are_respected() {
        let q = parse_query("q(X) :- r(X, Y)").unwrap();
        let rels = random_database(&q, 100, 3, 2);
        for row in &rels[0].1 {
            for &v in row {
                assert!((0..3).contains(&v));
            }
        }
    }
}
