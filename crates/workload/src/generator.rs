//! Query and view generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term, View, ViewSet};

/// Query/view shapes studied in §7 (after \[23\]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// `r1(X0, X1), r2(X1, X2), …` — all relations binary.
    Chain,
    /// `r1(X0, …), r2(X0, …), …` — subgoals share the first (center)
    /// attribute.
    Star,
    /// Random predicate choice with random variable sharing.
    Random,
}

/// Generator parameters (the inputs listed in §7).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Shape of the query and views.
    pub shape: Shape,
    /// Number of base relations available.
    pub relations: usize,
    /// Attributes per relation (chains force 2).
    pub arity: usize,
    /// Number of subgoals in the query (8 in the paper).
    pub query_subgoals: usize,
    /// Minimum subgoals per view (1 in the paper).
    pub view_min_subgoals: usize,
    /// Maximum subgoals per view (3 in the paper).
    pub view_max_subgoals: usize,
    /// Number of views to generate.
    pub views: usize,
    /// Number of nondistinguished variables per query/view head (0 =
    /// "all variables distinguished"). Views with a single subgoal keep
    /// all variables distinguished, following §7.2.
    pub nondistinguished: usize,
    /// RNG seed; everything is deterministic in it.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's star-query setting: 8 subgoals, views of 1–3 subgoals.
    pub fn star(views: usize, nondistinguished: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            shape: Shape::Star,
            relations: 8,
            arity: 3,
            query_subgoals: 8,
            view_min_subgoals: 1,
            view_max_subgoals: 3,
            views,
            nondistinguished,
            seed,
        }
    }

    /// The paper's chain-query setting: 8 binary subgoals.
    pub fn chain(views: usize, nondistinguished: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            shape: Shape::Chain,
            relations: 8,
            arity: 2,
            query_subgoals: 8,
            view_min_subgoals: 1,
            view_max_subgoals: 3,
            views,
            nondistinguished,
            seed,
        }
    }

    /// A random-shape setting with the same counts.
    pub fn random(views: usize, nondistinguished: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            shape: Shape::Random,
            relations: 8,
            arity: 3,
            query_subgoals: 8,
            view_min_subgoals: 1,
            view_max_subgoals: 3,
            views,
            nondistinguished,
            seed,
        }
    }
}

/// A generated query with its views.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The query.
    pub query: ConjunctiveQuery,
    /// The views.
    pub views: ViewSet,
}

/// Generates a workload from the configuration.
pub fn generate(config: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let query_body = query_body(config, &mut rng);
    let query = make_query("q", &query_body, config.nondistinguished, &mut rng);
    let mut views = ViewSet::new();
    for vi in 0..config.views {
        let len = rng.gen_range(
            config.view_min_subgoals..=config.view_max_subgoals.max(config.view_min_subgoals),
        );
        let subset = view_subgoals(config, &query_body, len, &mut rng);
        // §7.2: single-subgoal views keep all variables distinguished.
        let nondist = if subset.len() <= 1 {
            0
        } else {
            config.nondistinguished
        };
        let def = make_query(
            &format!("v{vi}"),
            &rename_apart(&subset, vi),
            nondist,
            &mut rng,
        );
        views.push(View::new(def));
    }
    Workload { query, views }
}

/// The query body for the configured shape.
fn query_body(config: &WorkloadConfig, rng: &mut StdRng) -> Vec<Atom> {
    let arity = if config.shape == Shape::Chain {
        2
    } else {
        config.arity.max(2)
    };
    let rel = |i: usize| Symbol::new(&format!("r{i}"));
    match config.shape {
        Shape::Chain => (0..config.query_subgoals)
            .map(|i| {
                Atom::new(
                    rel(i % config.relations.max(1)),
                    vec![var("X", i), var("X", i + 1)],
                )
            })
            .collect(),
        Shape::Star => {
            let mut next_var = 1;
            (0..config.query_subgoals)
                .map(|i| {
                    let mut terms = vec![var("X", 0)];
                    for _ in 1..arity {
                        terms.push(var("X", next_var));
                        next_var += 1;
                    }
                    Atom::new(rel(i % config.relations.max(1)), terms)
                })
                .collect()
        }
        Shape::Random => {
            let mut vars: Vec<Symbol> = Vec::new();
            let mut body = Vec::new();
            for i in 0..config.query_subgoals {
                let mut terms = Vec::with_capacity(arity);
                for _ in 0..arity {
                    // Reuse an existing variable half the time to create
                    // join structure.
                    if !vars.is_empty() && rng.gen_bool(0.5) {
                        let v = vars[rng.gen_range(0..vars.len())];
                        terms.push(Term::Var(v));
                    } else {
                        let v = Symbol::new(&format!("X{}", vars.len()));
                        vars.push(v);
                        terms.push(Term::Var(v));
                    }
                }
                body.push(Atom::new(rel(i % config.relations.max(1)), terms));
            }
            body
        }
    }
}

/// Picks the view's subgoals as a sub-pattern of the query.
fn view_subgoals(
    config: &WorkloadConfig,
    query_body: &[Atom],
    len: usize,
    rng: &mut StdRng,
) -> Vec<Atom> {
    let n = query_body.len();
    let len = len.min(n);
    match config.shape {
        Shape::Chain => {
            // A contiguous segment.
            let start = rng.gen_range(0..=n - len);
            query_body[start..start + len].to_vec()
        }
        Shape::Star | Shape::Random => {
            // A random subset of distinct subgoals.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let mut chosen = idx[..len].to_vec();
            chosen.sort_unstable();
            chosen.iter().map(|&i| query_body[i].clone()).collect()
        }
    }
}

/// Renames the variables of a sub-pattern apart so a view definition does
/// not textually share variables with the query (view index `vi` salts the
/// names; determinism is preserved).
fn rename_apart(atoms: &[Atom], vi: usize) -> Vec<Atom> {
    let mut map: HashMap<Symbol, Symbol> = HashMap::new();
    atoms
        .iter()
        .map(|a| Atom {
            predicate: a.predicate,
            terms: a
                .terms
                .iter()
                .map(|t| match *t {
                    Term::Var(v) => {
                        let next = map.len();
                        Term::Var(
                            *map.entry(v)
                                .or_insert_with(|| Symbol::new(&format!("V{vi}_{next}"))),
                        )
                    }
                    c => c,
                })
                .collect(),
        })
        .collect()
}

/// Builds a safe query from a body: the head keeps every variable except
/// `nondistinguished` randomly chosen ones (never dropping below one
/// variable for nonempty bodies, so heads stay informative).
fn make_query(
    head_name: &str,
    body: &[Atom],
    nondistinguished: usize,
    rng: &mut StdRng,
) -> ConjunctiveQuery {
    let mut vars: Vec<Symbol> = Vec::new();
    let mut seen: HashSet<Symbol> = HashSet::new();
    for a in body {
        for v in a.variables() {
            if seen.insert(v) {
                vars.push(v);
            }
        }
    }
    let keep = vars
        .len()
        .saturating_sub(nondistinguished)
        .max(1.min(vars.len()));
    // Choose which to drop, uniformly.
    let mut idx: Vec<usize> = (0..vars.len()).collect();
    for i in 0..vars.len() {
        let j = rng.gen_range(i..vars.len());
        idx.swap(i, j);
    }
    let dropped: HashSet<usize> = idx[keep..].iter().copied().collect();
    let head_terms: Vec<Term> = vars
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, &v)| Term::Var(v))
        .collect();
    ConjunctiveQuery::new(Atom::new(head_name, head_terms), body.to_vec())
}

fn var(prefix: &str, i: usize) -> Term {
    Term::Var(Symbol::new(&format!("{prefix}{i}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_query_has_chain_structure() {
        let w = generate(&WorkloadConfig::chain(10, 0, 42));
        assert_eq!(w.query.body.len(), 8);
        for (i, a) in w.query.body.iter().enumerate() {
            assert_eq!(a.arity(), 2);
            if i > 0 {
                // Consecutive subgoals share a variable.
                assert_eq!(w.query.body[i - 1].terms[1], a.terms[0]);
            }
        }
        assert!(w.query.is_safe());
        assert_eq!(w.views.len(), 10);
    }

    #[test]
    fn star_query_shares_center() {
        let w = generate(&WorkloadConfig::star(10, 0, 7));
        let center = w.query.body[0].terms[0];
        for a in &w.query.body {
            assert_eq!(a.terms[0], center);
        }
    }

    #[test]
    fn views_are_safe_and_within_size_bounds() {
        for seed in 0..5 {
            let w = generate(&WorkloadConfig::star(50, 1, seed));
            for v in &w.views {
                assert!(v.definition.is_safe());
                assert!((1..=3).contains(&v.definition.body.len()));
            }
        }
    }

    #[test]
    fn determinism_in_seed() {
        let a = generate(&WorkloadConfig::chain(20, 1, 99));
        let b = generate(&WorkloadConfig::chain(20, 1, 99));
        assert_eq!(a.query, b.query);
        assert_eq!(a.views, b.views);
        let c = generate(&WorkloadConfig::chain(20, 1, 100));
        assert!(a.query != c.query || a.views != c.views);
    }

    #[test]
    fn all_distinguished_means_full_heads() {
        let w = generate(&WorkloadConfig::chain(5, 0, 1));
        assert_eq!(w.query.existential_vars().len(), 0);
        for v in &w.views {
            assert_eq!(v.definition.existential_vars().len(), 0);
        }
    }

    #[test]
    fn nondistinguished_drops_one_variable() {
        let w = generate(&WorkloadConfig::chain(20, 1, 3));
        assert_eq!(w.query.existential_vars().len(), 1);
        for v in &w.views {
            if v.definition.body.len() == 1 {
                // §7.2: single-subgoal views keep both variables.
                assert_eq!(v.definition.existential_vars().len(), 0);
            } else {
                assert_eq!(v.definition.existential_vars().len(), 1);
            }
        }
    }

    #[test]
    fn views_do_not_share_variables_with_query() {
        let w = generate(&WorkloadConfig::star(10, 0, 5));
        let qvars: HashSet<Symbol> = w.query.variables().into_iter().collect();
        for v in &w.views {
            for var in v.definition.variables() {
                assert!(!qvars.contains(&var), "view shares {var} with query");
            }
        }
    }

    #[test]
    fn random_shape_generates_connected_enough_bodies() {
        let w = generate(&WorkloadConfig::random(10, 0, 11));
        assert_eq!(w.query.body.len(), 8);
        assert!(w.query.is_safe());
    }

    #[test]
    fn star_workloads_have_rewritings_when_all_distinguished() {
        // With all-distinguished sub-pattern views including the (likely)
        // full coverage, CoreCover should find rewritings for most seeds.
        let mut hits = 0;
        for seed in 0..10 {
            let w = generate(&WorkloadConfig::star(30, 0, seed));
            let r = viewplan_core::CoreCover::new(&w.query, &w.views).run();
            if !r.rewritings().is_empty() {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 star workloads had rewritings");
    }

    #[test]
    fn chain_workloads_have_rewritings_when_all_distinguished() {
        let mut hits = 0;
        for seed in 0..10 {
            let w = generate(&WorkloadConfig::chain(30, 0, seed));
            let r = viewplan_core::CoreCover::new(&w.query, &w.views).run();
            if !r.rewritings().is_empty() {
                hits += 1;
            }
        }
        assert!(hits >= 8, "only {hits}/10 chain workloads had rewritings");
    }
}
