//! Workload generation for the paper's experiments (§7).
//!
//! The paper's query generator takes: number of base relations, attributes
//! per relation, number of views, subgoals per view, subgoals per query,
//! and the shape of queries and views (chain / star / random, after
//! Steinbrunn et al. \[23\]). Queries and views share parameters except
//! subgoal counts; views are generated as sub-patterns of the query (chain
//! segments, star subsets, random subsets) so that rewritings exist for
//! most seeds — queries without rewritings are discarded by the harness,
//! exactly as the paper does ("we ignored queries that did not have
//! rewritings").
//!
//! Everything is deterministic in the seed ([`rand::rngs::StdRng`]), so
//! experiment CSVs are reproducible run to run.

pub mod database;
pub mod generator;

pub use database::random_database;
pub use generator::{generate, Shape, Workload, WorkloadConfig};
