//! Cost models M1/M2/M3 on the paper's Example 6.1 (Figure 5) and the
//! filter-subgoal scenario of §5.1.
//!
//! Demonstrates:
//! * M2 join ordering by subset DP over exact intermediate sizes;
//! * the supplementary-relation approach vs. the paper's §6.2 renaming
//!   heuristic — reproducing `cost(F1) < cost(F2)` from Example 6.1;
//! * grafting an empty-core filter view (the `P3`-beats-`P2` effect).
//!
//! Run with: `cargo run --example cost_models`

use viewplan::prelude::*;

fn main() {
    example_61();
    filter_subgoals();
}

/// Example 6.1 / Figure 5: dropping a compared attribute via renaming.
fn example_61() {
    println!("═══ Example 6.1 (Figure 5): M3 attribute dropping ═══\n");
    let query = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").expect("query");
    let views = parse_views(
        "v1(A, B) :- r(A, A), s(B, B).
         v2(A, B) :- t(A, B), s(B, B).",
    )
    .expect("views");

    // The Figure 5 base relations.
    let mut base = Database::new();
    base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
    let view_db = materialize_views(&views, &base);

    // P2 is the only minimal rewriting using view tuples.
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").expect("P2");
    println!("Rewriting P2: {p2}");
    let mut oracle = ExactOracle::new(&view_db);

    // Supplementary-relation plan (order v1, v2): B must be kept.
    let (plan_supp, gsr_supp, cost_supp) = viewplan::cost::plan_with_order(
        &query,
        &views,
        &p2,
        &[0, 1],
        DropPolicy::Supplementary,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    println!("\nSupplementary relations (the classic approach):");
    println!("  plan: {plan_supp}");
    println!("  GSR sizes: {gsr_supp:?}, cost: {cost_supp}");

    // The §6.2 renaming heuristic: B is droppable after v1 because
    // renaming it preserves equivalence.
    let (plan_smart, gsr_smart, cost_smart) = viewplan::cost::plan_with_order(
        &query,
        &views,
        &p2,
        &[0, 1],
        DropPolicy::SmartCostBased,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    println!("\nRenaming heuristic (§6.2):");
    println!("  plan: {plan_smart}");
    println!("  GSR sizes: {gsr_smart:?}, cost: {cost_smart}");
    assert!(cost_smart < cost_supp);
    println!("\n✓ cost(F1) = {cost_smart} < cost(F2) = {cost_supp}, as in the paper");

    // The answers agree regardless.
    let a = plan_supp
        .try_execute(&p2.head, &view_db)
        .expect("plan executes")
        .answer;
    let b = plan_smart
        .try_execute(&p2.head, &view_db)
        .expect("plan executes")
        .answer;
    assert_eq!(a, b);
    println!("✓ both plans return {:?}", a.as_slice());
}

/// §5.1: a very selective empty-core view used as a filter (P3 vs P2).
fn filter_subgoals() {
    println!("\n═══ §5.1: filter subgoals under M2 ═══\n");
    let query = parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)")
        .expect("query");
    let views = parse_views(
        "v1(M, D, C) :- car(M, D), loc(D, C).
         v2(S, M, C) :- part(S, M, C).
         v3(S)       :- car(M, anderson), loc(anderson, C), part(S, M, C).",
    )
    .expect("views");

    // A database where v3 is tiny (few stores match) but v1 ⋈ v2 is wide.
    let mut base = Database::new();
    for m in 0..30 {
        base.insert("car", vec![Value::Int(m), Value::sym("anderson")]);
    }
    for c in 0..6 {
        base.insert("loc", vec![Value::sym("anderson"), Value::Int(100 + c)]);
    }
    base.insert(
        "part",
        vec![Value::Int(9000), Value::Int(3), Value::Int(102)],
    );
    for s in 0..300 {
        base.insert(
            "part",
            vec![Value::Int(s), Value::Int(s % 30), Value::Int(500 + s % 9)],
        );
    }
    let view_db = materialize_views(&views, &base);
    let mut oracle = ExactOracle::new(&view_db);

    let no_filters = OptimizerConfig {
        max_filters: 0,
        ..OptimizerConfig::default()
    };
    let without = Optimizer::new(&query, &views)
        .with_config(no_filters)
        .best_plan(CostModel::M2, &mut oracle)
        .expect("rewriting exists");
    let with = Optimizer::new(&query, &views)
        .best_plan(CostModel::M2, &mut oracle)
        .expect("rewriting exists");

    println!("Best plan without filters: {}", without.plan);
    println!("  cost: {}", without.cost);
    println!("Best plan with filters:    {}", with.plan);
    println!("  cost: {}", with.cost);
    if with.cost < without.cost {
        println!("\n✓ grafting the empty-core view v3 made the plan cheaper —");
        println!("  exactly why P3 can beat P2 (§5.1): more subgoals, less cost.");
    } else {
        println!("\n(filters did not pay off on this database)");
    }

    // And the answers still match the direct evaluation over base tables.
    let direct = evaluate(&query, &base);
    let via = with
        .plan
        .try_execute(&with.rewriting.head, &view_db)
        .expect("plan executes")
        .answer;
    assert_eq!(direct, via);
    println!("✓ answer matches direct evaluation: {} tuple(s)", via.len());
}
