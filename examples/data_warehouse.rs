//! A data-warehouse scenario — the kind of application the paper's
//! introduction motivates (view-based query answering in warehousing
//! \[24\] and query optimization \[6\]).
//!
//! A retail warehouse stores a `sales` fact table with `product`,
//! `store_dim`, and `date_dim` dimensions. The DBA has materialized three
//! join views. An analyst's query is answered *without touching the base
//! tables*: the rewriting generator proposes logical plans over the views,
//! the optimizer picks a physical plan using catalog statistics, and the
//! engine executes it against the materialized views only.
//!
//! Run with: `cargo run --example data_warehouse`

use viewplan::prelude::*;

fn main() {
    // ── Warehouse schema ────────────────────────────────────────────────
    // sales(ProductId, StoreId, DateId, CustomerId)
    // product(ProductId, Category)
    // store_dim(StoreId, Region)
    // date_dim(DateId, Quarter)
    let views = parse_views(
        "sales_by_product(P, S, D, Cat) :- sales(P, S, D, Cu), product(P, Cat).
         sales_by_store(P, S, D, R)     :- sales(P, S, D, Cu), store_dim(S, R).
         store_regions(S, R)            :- store_dim(S, R).
         product_catalog(P, Cat)        :- product(P, Cat).
         date_quarters(D, Q)            :- date_dim(D, Q).",
    )
    .expect("views");

    // Analyst: "which (product, region) pairs had electronics sales in a
    // west-region store, and in which quarter?"
    let query = parse_query(
        "q(P, R, Q) :- sales(P, S, D, Cu), product(P, electronics), \
                       store_dim(S, R), date_dim(D, Q)",
    )
    .expect("query");
    println!("Analyst query:\n  {query}\n");

    // ── Base data (only used to materialize the views) ─────────────────
    let mut base = Database::new();
    for p in 0..40 {
        let cat = if p % 4 == 0 { "electronics" } else { "grocery" };
        base.insert("product", vec![Value::Int(p), Value::sym(cat)]);
    }
    for s in 0..12 {
        let region = ["west", "east", "north"][s as usize % 3];
        base.insert("store_dim", vec![Value::Int(s), Value::sym(region)]);
    }
    for d in 0..16 {
        base.insert(
            "date_dim",
            vec![Value::Int(d), Value::sym(&format!("q{}", d % 4 + 1))],
        );
    }
    for i in 0..500i64 {
        base.insert(
            "sales",
            vec![
                Value::Int(i * 7 % 40), // product
                Value::Int(i * 3 % 12), // store
                Value::Int(i % 16),     // date
                Value::Int(i % 100),    // customer
            ],
        );
    }
    let warehouse = materialize_views(&views, &base);
    println!("Materialized views:");
    for (name, rel) in warehouse.iter() {
        println!("  {name}: {} tuples", rel.len());
    }

    // ── Rewriting generation ────────────────────────────────────────────
    let result = CoreCover::new(&query, &views).run_all_minimal();
    println!("\nMinimal rewritings over the views (CoreCover*):");
    for r in result.rewritings() {
        println!("  {r}");
    }
    assert!(
        !result.rewritings().is_empty(),
        "the warehouse views must answer the query"
    );

    // ── Optimization with catalog statistics, execution with the engine ─
    let catalog = Catalog::from_database(&warehouse);
    let mut estimator = EstimateOracle::new(&catalog);
    let plan = Optimizer::new(&query, &views)
        .best_plan(CostModel::M2, &mut estimator)
        .expect("plan");
    println!("\nOptimizer's choice (estimated cost {:.0}):", plan.cost);
    println!("  {}", plan.plan);

    let trace = plan
        .plan
        .try_execute(&plan.rewriting.head, &warehouse)
        .expect("plan executes");
    println!(
        "\nExecuted against the views: {} answer tuple(s), intermediates {:?}",
        trace.answer.len(),
        trace.intermediate_sizes
    );

    // Sanity: identical to evaluating the query on the base tables.
    let direct = evaluate(&query, &base);
    assert_eq!(direct, trace.answer);
    println!("✓ matches direct evaluation over the base tables");

    // ── M3: what can be dropped along the way? ──────────────────────────
    let mut exact = ExactOracle::new(&warehouse);
    let best = result
        .rewritings()
        .iter()
        .filter(|r| r.body.len() <= 4)
        .filter_map(|r| optimal_m3_plan(&query, &views, r, DropPolicy::SmartCostBased, &mut exact))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((plan, cost)) = best {
        println!("\nBest M3 plan (exact sizes, cost {cost:.0}):");
        println!("  {plan}");
    }
}
