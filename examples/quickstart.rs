//! Quickstart: the paper's running "car-loc-part" example (Example 1.1).
//!
//! Shows the whole pipeline: parse a query and views, inspect the view
//! tuples and tuple-cores, generate the globally-minimal rewritings with
//! `CoreCover`, classify the paper's rewritings P1–P5, and verify on a
//! concrete database that the rewriting computes the same answer as the
//! query.
//!
//! Run with: `cargo run --example quickstart`

use viewplan::prelude::*;

fn main() {
    // ── The schema and query ────────────────────────────────────────────
    // car(Make, Dealer), loc(Dealer, City), part(Store, Make, City).
    let query = parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)")
        .expect("valid query");
    println!("Query:\n  {query}\n");

    let views = parse_views(
        "v1(M, D, C)    :- car(M, D), loc(D, C).
         v2(S, M, C)    :- part(S, M, C).
         v3(S)          :- car(M, anderson), loc(anderson, C), part(S, M, C).
         v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
         v5(M, D, C)    :- car(M, D), loc(D, C).",
    )
    .expect("valid views");
    println!("Views:\n{views}");

    // ── View tuples and tuple-cores (§3.3, §4.1) ────────────────────────
    let minimized = minimize(&query);
    let tuples = view_tuples(&minimized, &views);
    println!("View tuples T(Q, V) and their tuple-cores:");
    for t in &tuples {
        let core = tuple_core(&minimized, t, &views);
        let covered: Vec<String> = core
            .subgoals
            .iter()
            .map(|&i| minimized.body[i].to_string())
            .collect();
        println!(
            "  {:<22} covers {{{}}}",
            t.to_string(),
            if covered.is_empty() {
                "∅ — filter candidate".to_string()
            } else {
                covered.join(", ")
            }
        );
    }

    // ── CoreCover: globally-minimal rewritings (§4) ─────────────────────
    let result = CoreCover::new(&query, &views).run();
    println!(
        "\nCoreCover stats: {} views → {} classes, {} view tuples → {} representatives",
        result.stats.views,
        result.stats.view_classes,
        result.stats.view_tuples,
        result.stats.representative_tuples
    );
    println!("Globally-minimal rewritings:");
    for r in result.rewritings() {
        println!("  {r}");
    }

    // ── The paper's P1–P5, classified (§3.1–3.2) ────────────────────────
    println!("\nThe paper's rewritings:");
    for (name, src) in [
        (
            "P1",
            "q1(S, C) :- v1(M, anderson, C1), v1(M1, anderson, C), v2(S, M, C)",
        ),
        ("P2", "q1(S, C) :- v1(M, anderson, C), v2(S, M, C)"),
        ("P3", "q1(S, C) :- v3(S), v1(M, anderson, C), v2(S, M, C)"),
        ("P4", "q1(S, C) :- v4(M, anderson, C, S)"),
        (
            "P5",
            "q1(S, C) :- v1(M, anderson, C1), v5(M1, anderson, C), v2(S, M, C)",
        ),
    ] {
        let p = parse_query(src).expect("valid rewriting");
        let lmr = is_locally_minimal(&p, &query, &views);
        println!(
            "  {name}: {} subgoal(s), locally minimal: {lmr}",
            p.body.len()
        );
    }

    // ── Closed-world check on a concrete database ───────────────────────
    let mut base = Database::new();
    base.insert_sym(
        "car",
        &[
            &["honda", "anderson"],
            &["bmw", "anderson"],
            &["ford", "smith"],
        ],
    );
    base.insert_sym(
        "loc",
        &[&["anderson", "palo_alto"], &["smith", "menlo_park"]],
    );
    base.insert_sym(
        "part",
        &[
            &["store1", "honda", "palo_alto"],
            &["store2", "ford", "menlo_park"],
            &["store3", "bmw", "palo_alto"],
        ],
    );

    let direct = evaluate(&query, &base);
    let view_db = materialize_views(&views, &base);
    let via_views = evaluate(&result.rewritings()[0], &view_db);
    println!("\nAnswer via base relations:\n{direct}");
    println!("Answer via the GMR over materialized views:\n{via_views}");
    assert_eq!(direct, via_views, "closed-world equivalence must hold");
    println!("✓ the rewriting computes exactly the query's answer");
}
