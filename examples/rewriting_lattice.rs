//! The rewriting taxonomy of Figures 1 and 2: minimal, locally-minimal
//! (LMR), containment-minimal (CMR), and globally-minimal (GMR)
//! rewritings, on the paper's running example.
//!
//! Run with: `cargo run --example rewriting_lattice`

use viewplan::core::lattice::is_minimal_as_query;
use viewplan::core::{is_containment_minimal, lmr_partial_order};
use viewplan::prelude::*;

fn main() {
    let query = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
    let views = parse_views(
        "v1(M, D, C) :- car(M, D), loc(D, C).
         v2(S, M, C) :- part(S, M, C).
         v3(S) :- car(M, a), loc(a, C), part(S, M, C).
         v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
         v5(M, D, C) :- car(M, D), loc(D, C).",
    )
    .unwrap();

    let named: Vec<(&str, ConjunctiveQuery)> = [
        ("P1", "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)"),
        ("P2", "q1(S, C) :- v1(M, a, C), v2(S, M, C)"),
        ("P3", "q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)"),
        ("P4", "q1(S, C) :- v4(M, a, C, S)"),
        ("P5", "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)"),
    ]
    .iter()
    .map(|&(n, s)| (n, parse_query(s).unwrap()))
    .collect();

    println!("Figure 1 regions for the paper's P1–P5:\n");
    println!(
        "{:<4} {:>9} {:>9} {:>7} {:>9}",
        "", "minimal", "LMR", "#goals", "equiv?"
    );
    for (name, p) in &named {
        println!(
            "{:<4} {:>9} {:>9} {:>7} {:>9}",
            name,
            is_minimal_as_query(p),
            is_locally_minimal(p, &query, &views),
            p.body.len(),
            viewplan::core::is_equivalent_rewriting(p, &query, &views),
        );
    }

    // Figure 2(a): the LMR partial order.
    let lmrs: Vec<(&str, ConjunctiveQuery)> = named
        .iter()
        .filter(|(_, p)| is_locally_minimal(p, &query, &views))
        .map(|(n, p)| (*n, p.clone()))
        .collect();
    let queries: Vec<ConjunctiveQuery> = lmrs.iter().map(|(_, p)| p.clone()).collect();
    println!("\nProper containments among the LMRs (Figure 2a edges):");
    for (i, j) in lmr_partial_order(&queries) {
        println!("  {} ⊏ {}", lmrs[i].0, lmrs[j].0);
    }
    println!("\nContainment-minimal LMRs (CMRs):");
    for (k, (name, _)) in lmrs.iter().enumerate() {
        if is_containment_minimal(k, &queries) {
            println!("  {name}");
        }
    }

    // And the GMR, straight from CoreCover.
    let gmrs = CoreCover::new(&query, &views).run();
    println!("\nGlobally-minimal rewritings (CoreCover):");
    for r in gmrs.rewritings() {
        println!("  {r}");
    }

    // §3.2: a GMR that is not a CMR.
    println!("\n§3.2's subtlety — a GMR outside the CMR region:");
    let q2 = parse_query("q(X) :- e(X, X)").unwrap();
    let vs2 = parse_views("v(A, B) :- e(A, A), e(A, B)").unwrap();
    let p1 = parse_query("q(X) :- v(X, B)").unwrap();
    let p2 = parse_query("q(X) :- v(X, X)").unwrap();
    println!(
        "  P1 = {p1}: LMR {}, CMR {}",
        is_locally_minimal(&p1, &q2, &vs2),
        is_containment_minimal(0, &[p1.clone(), p2.clone()])
    );
    println!(
        "  P2 = {p2}: LMR {}, CMR {}",
        is_locally_minimal(&p2, &q2, &vs2),
        is_containment_minimal(1, &[p1.clone(), p2.clone()])
    );
    println!("  both have 1 subgoal → both are GMRs; only P2 is a CMR (Prop 3.1).");
}
