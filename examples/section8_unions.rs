//! §8 of the paper: rewriting with comparison views and unions of
//! conjunctive queries, plus the inverse-rule algorithm for
//! maximally-contained answering.
//!
//! Run with: `cargo run --example section8_unions`

use viewplan::extended::{
    certain_answers, evaluate_conditional, evaluate_union, is_contained_in_union,
    maximally_contained_rewriting, parse_conditional, ConditionalQuery, UnionQuery,
};
use viewplan::prelude::*;

fn main() {
    union_rewritings();
    maximally_contained();
}

/// The §8 closing example: Q needs a union rewriting (P1), or a clever
/// single-CQ rewriting with extra literals (P2).
fn union_rewritings() {
    println!("═══ §8: union rewritings with a comparison view ═══\n");
    let q = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)").unwrap();
    println!("Query:\n  {q}\n");
    println!("Views:\n  v1(A, B, C, D) :- p(A, B), r(C, D), C <= D\n  v2(E, F) :- r(E, F)\n");

    // Base data with both symmetric and asymmetric r-pairs.
    let mut base = Database::new();
    base.insert_int("p", &[&[10, 11], &[20, 21]]);
    base.insert_int("r", &[&[1, 2], &[2, 1], &[3, 5], &[4, 4]]);

    // Materialize the views (v1's comparison filters at load time).
    let v1_def = parse_conditional("v1(A, B, C, D) :- p(A, B), r(C, D)", &["C <= D"]).unwrap();
    let mut vdb = Database::new();
    vdb.set("v1".into(), evaluate_conditional(&v1_def, &base));
    vdb.set(
        "v2".into(),
        evaluate(&parse_query("v2(E, F) :- r(E, F)").unwrap(), &base),
    );

    let p1 = UnionQuery::plain(vec![
        parse_query("q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)").unwrap(),
        parse_query("q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)").unwrap(),
    ]);
    let p2 = ConditionalQuery::plain(
        parse_query("q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)").unwrap(),
    );

    let direct = evaluate(&q, &base);
    let via_p1 = evaluate_union(&p1, &vdb);
    let via_p2 = evaluate_conditional(&p2, &vdb);
    println!("Direct answer: {} tuple(s)", direct.len());
    println!(
        "Via P1 (union of 2 CQs, 2 subgoals each): {} tuple(s)",
        via_p1.len()
    );
    println!(
        "Via P2 (single CQ, 3 subgoals):           {} tuple(s)",
        via_p2.len()
    );
    assert_eq!(direct, via_p1);
    assert_eq!(direct, via_p2);
    println!("✓ both §8 rewritings compute the query answer\n");

    // The union reasoning: each branch alone is incomplete.
    for (i, b) in p1.branches.iter().enumerate() {
        let partial = evaluate_conditional(b, &vdb);
        println!(
            "  branch {} alone: {} of {} tuple(s)",
            i + 1,
            partial.len(),
            direct.len()
        );
    }

    // And the case-split containment the machinery can *prove*: r(X, Y)
    // is contained in (X ≤ Y) ∪ (Y ≤ X) but in neither branch.
    let plain = ConditionalQuery::plain(parse_query("s(X, Y) :- r(X, Y)").unwrap());
    let split = UnionQuery::new(vec![
        parse_conditional("s(X, Y) :- r(X, Y)", &["X <= Y"]).unwrap(),
        parse_conditional("s(X, Y) :- r(X, Y)", &["Y <= X"]).unwrap(),
    ]);
    assert_eq!(is_contained_in_union(&plain, &split, 7), Some(true));
    println!("\n✓ proved: r(X, Y) ⊑ (X ≤ Y branch) ∪ (Y ≤ X branch) — the case split");
}

/// When views lose information, the best you get is the maximally-
/// contained rewriting; the MiniCon union and the inverse-rule algorithm
/// agree on its answers.
fn maximally_contained() {
    println!("\n═══ §8: maximally-contained rewritings ═══\n");
    let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
    let views = parse_views(
        "va(A, B) :- e(A, B), red(A).\n\
         vb(A, B) :- e(A, B), blue(A).",
    )
    .unwrap();
    println!("Query:\n  {q}\nViews cover only red- and blue-sourced edges.\n");

    let mut base = Database::new();
    base.insert_int("e", &[&[1, 2], &[3, 4], &[5, 6]]);
    base.insert_int("red", &[&[1]]);
    base.insert_int("blue", &[&[3]]);
    let vdb = materialize_views(&views, &base);

    let union = maximally_contained_rewriting(&q, &views, 100).expect("contained rewritings");
    println!("Maximally-contained rewriting (union of CQs):");
    for b in &union.branches {
        println!("  {b}");
    }
    let via_union = evaluate_union(&union, &vdb);
    let via_inverse = certain_answers(&q, &views, &vdb);
    let full = evaluate(&q, &base);
    println!(
        "\nCertain answers: {} of {} total (edge (5,6) is invisible to the views)",
        via_union.len(),
        full.len()
    );
    assert_eq!(via_union, via_inverse);
    println!("✓ MiniCon union and inverse rules agree");
}
