//! Workload explorer: a miniature of the paper's §7 experiments.
//!
//! Generates star and chain workloads at growing view counts, runs
//! `CoreCover`, and prints the quantities Figures 6–9 plot: running time,
//! view equivalence classes, view tuples vs. representative view tuples,
//! and the number of GMRs found. (The full sweep with 40 queries per
//! point lives in the benchmark harness: `cargo run -p viewplan-bench
//! --release --bin figures`.)
//!
//! Run with: `cargo run --release --example workload_explorer`

use std::time::Instant;
use viewplan::prelude::*;

fn main() {
    for (label, mk) in [
        (
            "star queries, all variables distinguished",
            (|views, seed| WorkloadConfig::star(views, 0, seed))
                as fn(usize, u64) -> WorkloadConfig,
        ),
        (
            "star queries, 1 nondistinguished variable",
            |views, seed| WorkloadConfig::star(views, 1, seed),
        ),
        (
            "chain queries, all variables distinguished",
            |views, seed| WorkloadConfig::chain(views, 0, seed),
        ),
        (
            "chain queries, 1 nondistinguished variable",
            |views, seed| WorkloadConfig::chain(views, 1, seed),
        ),
    ] {
        println!("── {label} ──");
        println!(
            "{:>7} {:>10} {:>9} {:>13} {:>8} {:>6} {:>9}",
            "views", "classes", "tuples", "rep. tuples", "GMRs", "sg/GMR", "time"
        );
        for views in [50, 100, 200, 400] {
            let mut w = generate(&mk(views, 42));
            // Skip seeds without rewritings, as the paper does.
            let mut seed = 42u64;
            let (result, elapsed) = loop {
                let start = Instant::now();
                let result = CoreCover::new(&w.query, &w.views).run();
                let elapsed = start.elapsed();
                if !result.rewritings().is_empty() || seed > 52 {
                    break (result, elapsed);
                }
                seed += 1;
                w = generate(&mk(views, seed));
            };
            let s = result.stats;
            println!(
                "{:>7} {:>10} {:>9} {:>13} {:>8} {:>6} {:>8.2?}",
                views,
                s.view_classes,
                s.view_tuples,
                s.representative_tuples,
                s.rewritings,
                result
                    .rewritings()
                    .first()
                    .map(|r| r.body.len())
                    .unwrap_or(0),
                elapsed
            );
        }
        println!();
    }
    println!("Observation (matching Figures 7 and 9): the number of");
    println!("representative view tuples saturates at a bound set by the");
    println!("query alone (e.g. 21 = 8+7+6 chain segments of length ≤ 3)");
    println!("rather than growing with the number of views — that is why");
    println!("CoreCover's running time is bounded.");
}
