//! `viewplan` — a command-line front end to the rewriting generator and
//! optimizer.
//!
//! ```text
//! viewplan rewrite FILE [--all-minimal] [--no-grouping] [--no-prune] [--baseline {naive,minicon,bucket}]
//! viewplan plan    FILE [--model {m1,m2,m3}]
//! viewplan explain FILE [--model {m1,m2,m3}] [--json]
//! viewplan eval    FILE
//! viewplan batch   FILE [--no-cache] [--cache-capacity N] [--csv FILE] [--all-minimal]
//! viewplan batch   --workload {star,chain,random} [--queries N] [--views N] [--seed S] [--repeat K]
//! viewplan serve   VIEWSFILE [--listen ADDR] [--workers N] [--queue-capacity N] [--deadline-ms MS]
//! viewplan loadgen FILE --connect HOST:PORT [--clients N] [--requests N] [--deadline-ms MS]
//! viewplan soak    [--queries N] [--views N] [--seed S]
//! viewplan bench   [--smoke] [--out DIR] | --validate FILE... | --validate-trace FILE...
//! viewplan help
//! ```
//!
//! `batch` answers a whole stream of queries against one view set in a
//! single process: the per-view-set preprocessing runs once, requests
//! fan out over the worker pool, and answers are cached by the query's
//! canonical form (identical up to variable renaming). `FILE` holds the
//! view rules, then a `---` line, then one query rule per line; with
//! `--workload` the stream is generated instead. Per-query stdout is
//! byte-identical at any thread count and cache setting; cache/latency
//! observability goes to stderr and the optional `--csv` file.
//! `serve` is the interactive form: views from a file, requests on stdin
//! (or over TCP with `--listen ADDR`, speaking a length-prefixed frame
//! protocol with admission control and load shedding). Both front-ends
//! accept `add-view <rule>` / `drop-view <name>` DDL: the catalog swaps
//! to a new epoch without stopping traffic, invalidating exactly the
//! cached answers the change can touch. `loadgen` is the matching
//! closed-loop client: it hammers a `--listen` endpoint, retries shed
//! responses with jittered exponential backoff, and fails loudly if any
//! request goes unaccounted or an answer regresses to an older epoch.
//!
//! `explain` replays a rewrite/plan with full provenance: which views the
//! VP006 pre-pass pruned, every candidate cover with its accept/reject
//! verdict, and the per-term cost breakdown of the winning plan vs. the
//! runner-up — human-readable by default, a stable JSON document with
//! `--json`. `bench` runs the fixed star/chain/random sweep suites plus a
//! cold/warm serve loop and writes schema-versioned `BENCH_core.json` /
//! `BENCH_serve.json` (`--validate` re-checks such files, and
//! `--validate-trace` checks a `--trace-json` export is well-formed).
//!
//! Every command also accepts `--stats` (print a phase/counter report to
//! stderr), `--stats-json FILE` (dump the full metrics registry as JSON),
//! `--trace` (render this request's span tree with typed events on
//! stderr), `--trace-json FILE` (export the same trace as Chrome
//! trace-event JSON for `chrome://tracing` / Perfetto), `--metrics-out
//! FILE` (write a Prometheus text-format snapshot of all counters and
//! histograms), and `--threads N` (parallelize the CoreCover pipeline;
//! results are identical for any N — default `VIEWPLAN_THREADS` or 1).
//!
//! Anytime budgets: `--timeout-ms MS` bounds the wall clock and
//! `--node-budget N` caps each search's node count (deterministic at any
//! thread count). When a budget fires the command still exits 0, printing
//! best-so-far results plus an explicit incomplete note — never a hang or
//! a panic. `VIEWPLAN_FAULT=phase:nth` (phase ∈ hom|cover|plan|deadline)
//! injects an exhaustion fault at the nth search of that phase, for
//! testing the degradation paths. `soak` stress-runs generated workloads
//! under a tight budget and post-verifies every returned rewriting.
//!
//! Exit codes: 0 success (even when a budget truncated the result), 2
//! malformed input (bad file, bad flag value, unsupported query), 1
//! internal error.
//!
//! FILE is a plain-text problem description:
//!
//! ```text
//! % the first rule is the query; the remaining rules are views
//! q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).
//! v1(M, D, C) :- car(M, D), loc(D, C).
//! v2(S, M, C) :- part(S, M, C).
//!
//! % ground atoms are base data (needed by `plan` and `eval`)
//! car(honda, anderson).
//! loc(anderson, palo_alto).
//! part(store1, honda, palo_alto).
//! ```

use std::process::ExitCode;
use viewplan::analyze::{
    analyze, analyze_errors, render_human, render_json, render_summary, Layout,
};
use viewplan::core::{default_threads, parallel_map, CoreError};
use viewplan::cost::PlanError;
use viewplan::cq::Program;
use viewplan::obs::budget::BudgetGuard;
use viewplan::obs::{BudgetSpec, Completeness, Fault};
use viewplan::prelude::*;

/// A CLI failure, split by whose fault it is: malformed input exits with
/// code 2 (scriptable: "fix your file/flags"), internal errors — states
/// the program itself promises are impossible — exit with code 1.
#[derive(Debug)]
enum CliError {
    Input(String),
    Internal(String),
}

impl CliError {
    fn input(msg: impl Into<String>) -> CliError {
        CliError::Input(msg.into())
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> CliError {
        CliError::Input(e.to_string())
    }
}

impl From<PlanError> for CliError {
    fn from(e: PlanError) -> CliError {
        CliError::Input(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Input(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("run `viewplan help` for usage");
            ExitCode::from(2)
        }
        Err(CliError::Internal(msg)) => {
            eprintln!("internal error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::input("missing command"));
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        "rewrite" => with_stats(&args[1..], rewrite),
        "plan" => with_stats(&args[1..], plan),
        "explain" => with_stats(&args[1..], explain_cmd),
        "bench" => with_stats(&args[1..], bench),
        "eval" => with_stats(&args[1..], eval),
        "batch" => with_stats(&args[1..], batch),
        "serve" => with_stats(&args[1..], serve),
        "loadgen" => with_stats(&args[1..], loadgen),
        "soak" => with_stats(&args[1..], soak),
        "check" => check(&args[1..]),
        other => Err(CliError::Input(format!("unknown command {other:?}"))),
    }
}

/// Runs a command with stats collection enabled when requested, emitting
/// the reports afterwards. Also installs the `--engine` selection first,
/// so every evaluation in the command runs on the requested executor.
fn with_stats(
    args: &[String],
    command: fn(&[String]) -> Result<(), CliError>,
) -> Result<(), CliError> {
    engine_arg(args)?;
    let stats = stats_request(args);
    command(args)?;
    stats.emit()
}

/// The `--engine row|columnar|yannakakis` flag: sets the process-wide
/// default executor (the `VIEWPLAN_ENGINE` environment variable is the
/// fallback, and the columnar engine the default).
fn engine_arg(args: &[String]) -> Result<(), CliError> {
    if let Some(v) = option(args, "--engine") {
        let engine = Engine::from_name(v).ok_or_else(|| {
            CliError::Input(format!(
                "--engine expects `row`, `columnar`, or `yannakakis`, got {v:?}"
            ))
        })?;
        set_default_engine(engine);
    }
    Ok(())
}

fn print_help() {
    println!(
        "viewplan — generating efficient plans for queries using views\n\
         \n\
         USAGE:\n\
         viewplan rewrite FILE [--all-minimal] [--no-grouping] [--no-prune] [--baseline NAME]\n\
         viewplan plan    FILE [--model m1|m2|m3]\n\
         viewplan explain FILE [--model m1|m2|m3] [--json]\n\
         viewplan eval    FILE\n\
         viewplan batch   FILE [--no-cache] [--cache-capacity N] [--csv FILE] [--all-minimal]\n\
         viewplan batch   --workload star|chain|random [--queries N] [--views N] [--seed S] [--repeat K]\n\
         viewplan serve   VIEWSFILE [--listen ADDR] [--workers N] [--queue-capacity N]\n\
         viewplan loadgen FILE --connect HOST:PORT [--clients N] [--requests N]\n\
         viewplan soak    [--queries N] [--views N] [--seed S]\n\
         viewplan bench   [--smoke] [--out DIR] | --validate FILE... | --validate-trace FILE...\n\
         viewplan check   FILE [--json]\n\
         \n\
         `check` runs the static analyzer over a problem or batch file and\n\
         prints coded diagnostics (VP001–VP007) with line:column spans —\n\
         rustc-style by default, a stable JSON document with --json. Exit 2\n\
         iff any error-severity finding (VP001 arity mismatch) is present;\n\
         warnings (dead views, uncoverable subgoals, cartesian products,\n\
         redundant subgoals, predicted blowups) exit 0. The processing\n\
         commands refuse (exit 2) inputs `check` reports errors for.\n\
         \n\
         `batch` serves many queries against one view set in one process:\n\
         the per-view-set preprocessing runs once, requests fan out over\n\
         --threads workers, and answers are cached by the query's form up\n\
         to variable renaming (budget-truncated answers are never cached).\n\
         batch FILE = view rules, a `---` line, then one query per line.\n\
         Per-query stdout is byte-identical at any thread count and cache\n\
         setting; cache hit/miss and latency columns go to stderr / --csv.\n\
         \n\
         `serve --listen ADDR` turns the interactive server into a TCP\n\
         endpoint (length-prefixed frames; `127.0.0.1:0` picks a port,\n\
         printed to stderr). Requests pass admission control: a bounded\n\
         queue (--queue-capacity) feeding --workers threads, shedding\n\
         on overflow or when the projected wait exceeds the request's\n\
         deadline (`query deadline-ms=N <rule>` or --deadline-ms).\n\
         `add-view <rule>` / `drop-view <name>` — on either front-end —\n\
         swap the catalog to a new epoch without stopping traffic.\n\
         `loadgen` drives a listening server closed-loop: --clients\n\
         connections each offering --requests queries from FILE,\n\
         retrying shed responses with jittered exponential backoff\n\
         (--max-retries), reporting throughput and latency percentiles.\n\
         VIEWPLAN_FAULT=accept|read|write|swap:nth injects one serving\n\
         fault at the nth probe of that point, for chaos testing.\n\
         \n\
         `explain` replays a rewrite/plan with provenance: views pruned\n\
         by the VP006 pre-pass, every candidate cover with its verdict\n\
         (accepted / duplicate variant / not equivalent), and per-term\n\
         cost breakdowns of the winning plan vs. the runner-up. Without\n\
         ground facts the default model is m1; --json emits a stable\n\
         machine-readable document (golden-tested).\n\
         \n\
         `bench` runs the fixed star/chain/random sweep suites, a\n\
         cold/warm serve loop, and a row-vs-columnar engine comparison,\n\
         writing schema-versioned BENCH_core.json, BENCH_serve.json, and\n\
         BENCH_engine.json to --out DIR (--smoke shrinks them for CI).\n\
         --validate re-checks BENCH files; --validate-trace checks a\n\
         --trace-json export parses and balances.\n\
         \n\
         Common flags: --engine row|columnar|yannakakis (pick the\n\
         executor; all produce byte-identical answers; yannakakis\n\
         semijoin-reduces acyclic queries first, falling back to\n\
         columnar on cyclic ones; default: columnar or\n\
         VIEWPLAN_ENGINE), --stats (phase/counter report on stderr),\n\
         --stats-json FILE (dump the metrics registry as JSON),\n\
         --trace (render the request's span tree + typed events on\n\
         stderr), --trace-json FILE (Chrome trace-event export),\n\
         --metrics-out FILE (Prometheus text-format snapshot),\n\
         --threads N (parallel CoreCover pipeline; identical results for\n\
         any N; default: VIEWPLAN_THREADS or 1).\n\
         \n\
         Anytime budgets: --timeout-ms MS (wall-clock deadline),\n\
         --node-budget N (per-search node cap; deterministic at any\n\
         thread count). Exhaustion degrades to best-so-far results with\n\
         an incomplete note, still exit 0. VIEWPLAN_FAULT=phase:nth\n\
         (hom|cover|plan|deadline) injects exhaustion for testing.\n\
         `soak` stress-runs generated workloads under a tight budget\n\
         (default: 50 ms + 2000 nodes) and verifies every rewriting.\n\
         \n\
         Exit codes: 0 success (including truncated-with-note), 2\n\
         malformed input, 1 internal error.\n\
         \n\
         FILE holds a query (first rule), views (other rules), and optional\n\
         ground facts (base data). `rewrite` prints the view tuples, their\n\
         tuple-cores, and the rewritings; `plan` optimizes and executes a\n\
         physical plan under the chosen cost model; `eval` answers the query\n\
         directly and via the best rewriting, checking they agree."
    );
}

/// A parsed problem file.
struct Problem {
    query: ConjunctiveQuery,
    views: ViewSet,
    base: Database,
}

/// A `.vp` file split into rules and facts, with the rule text kept
/// *line-preserving*: `rules_src` has exactly one line per input line
/// (non-rule lines blanked, comments stripped, leading whitespace kept),
/// so parser spans carry the original file's line:column coordinates.
struct SourceFile {
    rules_src: String,
    program: Program,
    layout: Layout,
    facts: Vec<Atom>,
}

fn read_source(path: &str) -> Result<SourceFile, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    let mut rules_src = String::new();
    let mut facts: Vec<Atom> = Vec::new();
    let mut rules_before_separator = 0usize;
    let mut saw_separator = false;
    for raw in text.lines() {
        let stripped = raw.split(['%', '#']).next().unwrap_or("");
        let line = stripped.trim();
        if line.contains(":-") {
            rules_src.push_str(stripped.trim_end());
            if !saw_separator {
                rules_before_separator += 1;
            }
        } else if line == "---" {
            saw_separator = true;
        } else if !line.is_empty() {
            let atom_src = line.trim_end_matches('.');
            let atom = parse_atom(atom_src)
                .map_err(|e| CliError::Input(format!("bad fact {line:?}: {e}")))?;
            if atom.terms.iter().any(|t| t.is_var()) {
                return Err(CliError::Input(format!("fact {atom} must be ground")));
            }
            facts.push(atom);
        }
        rules_src.push('\n');
    }
    let program = viewplan::cq::parse_program(&rules_src)
        .map_err(|e| CliError::Input(format!("bad rule: {e}")))?;
    let layout = if saw_separator {
        Layout::Batch {
            view_count: rules_before_separator,
        }
    } else {
        Layout::Problem
    };
    Ok(SourceFile {
        rules_src,
        program,
        layout,
        facts,
    })
}

/// The fail-fast input gate shared by the processing commands: runs the
/// error-severity checks and refuses (exit 2) any program with
/// findings. Warnings are not computed here — the warning passes do
/// containment work that would pollute the pipeline's own stats — run
/// `viewplan check` for the full analysis.
fn analysis_gate(source: &SourceFile, path: &str) -> Result<(), CliError> {
    let analysis = analyze_errors(&source.program, source.layout);
    if analysis.has_errors() {
        let findings: Vec<String> = analysis
            .errors()
            .map(|d| {
                format!(
                    "{path}:{}:{}: [{}] {}",
                    d.span.line, d.span.column, d.code, d.message
                )
            })
            .collect();
        return Err(CliError::Input(format!(
            "{}\n(run `viewplan check {path}` for details)",
            findings.join("\n")
        )));
    }
    Ok(())
}

fn load(path: &str) -> Result<Problem, CliError> {
    let source = read_source(path)?;
    if matches!(source.layout, Layout::Batch { .. }) {
        return Err(CliError::Input(format!(
            "{path} is a batch file (it contains a `---` separator); use `viewplan batch`"
        )));
    }
    analysis_gate(&source, path)?;
    let mut rules = source.program.rules.into_iter();
    let query = rules
        .next()
        .ok_or_else(|| CliError::input("file contains no rules"))?;
    let views = ViewSet::from_views(rules.map(View::new));
    let mut base = Database::new();
    for f in source.facts {
        let tuple = f
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Value::from_constant(*c),
                Term::Var(_) => unreachable!("checked ground above"),
            })
            .collect();
        base.try_insert(f.predicate, tuple)
            .map_err(|e| CliError::Input(format!("{path}: bad fact {f}: {e}")))?;
    }
    Ok(Problem { query, views, base })
}

/// `viewplan check FILE [--json]`: run the static analyzer and report
/// every finding (errors *and* warnings). Exit 0 when no errors, 2 when
/// any error-severity diagnostic is present.
fn check(args: &[String]) -> Result<(), CliError> {
    let path = file_arg(args)?;
    let source = read_source(path)?;
    let analysis = analyze(&source.program, source.layout);
    if flag(args, "--json") {
        print!("{}", render_json(&analysis, path));
    } else {
        let color = use_color();
        print!(
            "{}",
            render_human(&analysis, path, &source.rules_src, color)
        );
        println!("{path}: {}", render_summary(&analysis));
    }
    if analysis.has_errors() {
        return Err(CliError::Input(format!(
            "{path}: {}",
            render_summary(&analysis)
        )));
    }
    Ok(())
}

/// Color when stdout is a terminal and `NO_COLOR` is unset.
fn use_color() -> bool {
    use std::io::IsTerminal;
    std::env::var_os("NO_COLOR").is_none() && std::io::stdout().is_terminal()
}

/// Options that consume the following argument as their value.
const VALUE_OPTIONS: &[&str] = &[
    "--model",
    "--baseline",
    "--engine",
    "--stats-json",
    "--threads",
    "--timeout-ms",
    "--node-budget",
    "--queries",
    "--views",
    "--seed",
    "--cache-capacity",
    "--csv",
    "--workload",
    "--repeat",
    "--trace-json",
    "--metrics-out",
    "--out",
    "--listen",
    "--connect",
    "--clients",
    "--requests",
    "--workers",
    "--accept-threads",
    "--queue-capacity",
    "--deadline-ms",
    "--max-retries",
    "--idle-timeout-ms",
    "--read-timeout-ms",
    "--write-timeout-ms",
];

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The positional (non-option) arguments, in order. Walks the argument
/// list left to right so an option *value* is consumed by its option and
/// never mistaken for a positional — and, conversely, a positional that
/// merely *equals* some option's value is kept (the old any-match scan
/// dropped `viewplan plan m2 --model m2`'s FILE).
fn positional_args(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_OPTIONS.contains(&a) {
            i += 2; // skip the option and its value
        } else if a.starts_with("--") {
            i += 1; // boolean flag
        } else {
            out.push(a);
            i += 1;
        }
    }
    out
}

fn file_arg(args: &[String]) -> Result<&str, CliError> {
    let positionals = positional_args(args);
    match positionals.as_slice() {
        [] => Err(CliError::input("missing FILE argument")),
        [file] => Ok(file),
        [_, extra, ..] => Err(CliError::Input(format!(
            "unexpected extra argument {extra:?}"
        ))),
    }
}

/// The `--threads` value: a positive integer, defaulting to
/// `VIEWPLAN_THREADS` (or 1) when the flag is absent.
fn threads_arg(args: &[String]) -> Result<usize, CliError> {
    match option(args, "--threads") {
        None => Ok(default_threads()),
        Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Input(format!("--threads expects a positive integer, got {v:?}"))
        }),
    }
}

/// A `--name N` option holding a positive integer, with a default when
/// absent.
fn u64_arg(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    match option(args, name) {
        None => Ok(default),
        Some(v) => v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Input(format!("{name} expects a positive integer, got {v:?}"))
        }),
    }
}

/// The anytime-budget flags plus the `VIEWPLAN_FAULT` injection hook,
/// combined into a [`BudgetSpec`] (unlimited when none are given).
fn budget_arg(args: &[String]) -> Result<BudgetSpec, CliError> {
    let mut spec = BudgetSpec::new();
    if let Some(v) = option(args, "--timeout-ms") {
        let ms = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Input(format!(
                "--timeout-ms expects a positive integer, got {v:?}"
            ))
        })?;
        spec = spec.timeout_ms(ms);
    }
    if let Some(v) = option(args, "--node-budget") {
        let n = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Input(format!(
                "--node-budget expects a positive integer, got {v:?}"
            ))
        })?;
        spec = spec.node_budget(n);
    }
    if let Some(fault) = Fault::from_env().map_err(CliError::Input)? {
        spec = spec.fault(fault);
    }
    Ok(spec)
}

/// Installs the requested budget for the rest of the command (a no-op
/// `None` when the spec constrains nothing). The deadline starts now.
fn install_budget(spec: BudgetSpec) -> Option<BudgetGuard> {
    (!spec.is_unlimited()).then(|| viewplan::obs::budget::install(spec.build()))
}

/// How completely the installed budget let the command run. Budgets are
/// installed freshly per command, so counting hits from zero is exact.
fn budget_outcome() -> Completeness {
    viewplan::obs::budget::completeness_since(Default::default())
}

/// Prints the incomplete-result note when the budget fired. Exit stays 0:
/// a truncated answer with an honest marker is a success, not an error.
fn budget_note(completeness: Completeness) {
    if completeness.is_incomplete() {
        println!(
            "note: budget exhausted ({completeness}) — results are best-so-far, not exhaustive"
        );
    }
}

/// Which observability outputs the user asked for; constructing it (via
/// [`stats_request`]) enables collection when any output is requested and
/// installs a request-scoped [`viewplan::obs::Trace`] for `--trace` /
/// `--trace-json`.
struct StatsRequest {
    report: bool,
    json: Option<String>,
    metrics_out: Option<String>,
    trace_tree: bool,
    trace_json: Option<String>,
    /// The installed trace (plus the guard keeping it installed on this
    /// thread) when either trace output was requested.
    trace: Option<(viewplan::obs::Trace, viewplan::obs::trace::TraceGuard)>,
}

fn stats_request(args: &[String]) -> StatsRequest {
    let mut request = StatsRequest {
        report: flag(args, "--stats"),
        json: option(args, "--stats-json").map(str::to_string),
        metrics_out: option(args, "--metrics-out").map(str::to_string),
        trace_tree: flag(args, "--trace"),
        trace_json: option(args, "--trace-json").map(str::to_string),
        trace: None,
    };
    if request.report
        || request.json.is_some()
        || request.metrics_out.is_some()
        || request.trace_tree
        || request.trace_json.is_some()
    {
        viewplan::obs::set_enabled(true);
    }
    if request.trace_tree || request.trace_json.is_some() {
        let trace = viewplan::obs::Trace::new();
        let guard = viewplan::obs::trace::install(&trace);
        request.trace = Some((trace, guard));
    }
    request
}

impl StatsRequest {
    /// Emits the requested reports (call after the command's work).
    fn emit(&self) -> Result<(), CliError> {
        if self.report {
            viewplan::obs::report_to_stderr();
            let skips = viewplan::obs::counter_value("engine.arity_mismatch_skips");
            if skips > 0 {
                eprintln!(
                    "note: {skips} tuple(s) skipped where a subgoal's arity disagreed with \
                     the stored relation (engine.arity_mismatch_skips)"
                );
            }
        }
        if let Some(path) = &self.json {
            viewplan::obs::write_json_report(std::path::Path::new(path))
                .map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &self.metrics_out {
            viewplan::obs::write_prometheus(std::path::Path::new(path))
                .map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))?;
        }
        if let Some((trace, _)) = &self.trace {
            if self.trace_tree {
                eprint!("{}", trace.render_tree());
            }
            if let Some(path) = &self.trace_json {
                std::fs::write(path, trace.chrome_json())
                    .map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))?;
            }
        }
        Ok(())
    }
}

fn rewrite(args: &[String]) -> Result<(), CliError> {
    let problem = load(file_arg(args)?)?;
    let threads = threads_arg(args)?;
    let _budget = install_budget(budget_arg(args)?);
    if let Some(baseline) = option(args, "--baseline") {
        let rs = match baseline {
            "naive" => naive_gmrs(&problem.query, &problem.views),
            "minicon" => {
                MiniCon::new(&problem.query, &problem.views).try_rewritings(true, 10_000)?
            }
            "bucket" => viewplan::core::bucket_rewritings(&problem.query, &problem.views, 100_000),
            other => return Err(CliError::Input(format!("unknown baseline {other:?}"))),
        };
        println!("{} rewriting(s) via {baseline}:", rs.len());
        for r in rs {
            println!("  {r}");
        }
        budget_note(budget_outcome());
        return Ok(());
    }
    let mut config = CoreCoverConfig {
        threads,
        ..CoreCoverConfig::default()
    };
    if flag(args, "--no-grouping") {
        config.group_equivalent_views = false;
        config.group_view_tuples = false;
    }
    if flag(args, "--no-prune") {
        config.prune_unusable_views = false;
    }
    let cc = CoreCover::new(&problem.query, &problem.views).with_config(config);
    let result = if flag(args, "--all-minimal") {
        cc.try_run_all_minimal()?
    } else {
        cc.try_run()?
    };
    println!("minimized query:\n  {}", result.minimized_query);
    println!("\nview tuples and tuple-cores:");
    for (t, core) in result.view_tuples.iter().zip(&result.cores) {
        let covered: Vec<String> = core
            .subgoals
            .iter()
            .map(|&i| result.minimized_query.body[i].to_string())
            .collect();
        println!(
            "  {:<30} {}",
            t.to_string(),
            if covered.is_empty() {
                "(empty core — filter candidate)".to_string()
            } else {
                covered.join(", ")
            }
        );
    }
    let s = result.stats;
    println!(
        "\nstats: {} views -> {} classes; {} tuples -> {} representatives",
        s.views, s.view_classes, s.view_tuples, s.representative_tuples
    );
    if s.truncated {
        println!("note: enumeration stopped at the rewriting cap — the list below is incomplete");
    }
    println!(
        "\n{} {} rewriting(s):",
        result.rewritings().len(),
        if flag(args, "--all-minimal") {
            "minimal"
        } else {
            "globally-minimal"
        }
    );
    for r in result.rewritings() {
        println!("  {r}");
    }
    budget_note(s.completeness);
    Ok(())
}

fn plan(args: &[String]) -> Result<(), CliError> {
    let problem = load(file_arg(args)?)?;
    let threads = threads_arg(args)?;
    let _budget = install_budget(budget_arg(args)?);
    if problem.base.is_empty() {
        return Err(CliError::input(
            "`plan` needs ground facts in the file (base data)",
        ));
    }
    let model = match option(args, "--model").unwrap_or("m2") {
        "m1" => CostModel::M1,
        "m2" => CostModel::M2,
        "m3" => CostModel::M3(DropPolicy::SmartCostBased),
        other => return Err(CliError::Input(format!("unknown cost model {other:?}"))),
    };
    let vdb = materialize_views(&problem.views, &problem.base);
    println!("materialized views:");
    let mut listing: Vec<(Symbol, usize)> = vdb.iter().map(|(n, r)| (n, r.len())).collect();
    listing.sort();
    for (name, len) in listing {
        println!("  {name}: {len} tuple(s)");
    }
    let mut oracle = ExactOracle::new(&vdb);
    let config = OptimizerConfig {
        corecover: CoreCoverConfig {
            threads,
            ..CoreCoverConfig::default()
        },
        ..OptimizerConfig::default()
    };
    let outcome = Optimizer::new(&problem.query, &problem.views)
        .with_config(config)
        .try_plan(model, &mut oracle)?;
    let Some(best) = outcome.best else {
        if outcome.completeness.is_incomplete() {
            // The budget fired before any plan was found: an honest
            // empty answer, not a malformed input.
            println!("no plan found within the budget ({})", outcome.completeness);
            return Ok(());
        }
        return Err(CliError::input(
            "the query has no equivalent rewriting over these views",
        ));
    };
    println!("\nbest rewriting: {}", best.rewriting);
    println!("physical plan:  {}", best.plan);
    println!("cost:           {}", best.cost);
    let trace = best
        .plan
        .try_execute(&best.rewriting.head, &vdb)
        .map_err(PlanError::from)?;
    println!("intermediates:  {:?}", trace.intermediate_sizes);
    println!("\nanswer ({} tuple(s)):", trace.answer.len());
    print!("{}", trace.answer);
    budget_note(outcome.completeness);
    Ok(())
}

/// `viewplan bench`: run the fixed trajectory suites and write the
/// schema-versioned `BENCH_core.json` / `BENCH_serve.json` documents,
/// or (with `--validate`) check existing documents against the schema.
fn bench(args: &[String]) -> Result<(), CliError> {
    use viewplan_bench::trajectory::{
        core_trajectory, engine_trajectory, serve_trajectory, validate_core, validate_engine,
        validate_serve, TrajectoryConfig,
    };
    if flag(args, "--validate-trace") {
        let files = positional_args(args);
        if files.is_empty() {
            return Err(CliError::input(
                "bench --validate-trace needs one or more Chrome trace JSON files",
            ));
        }
        for path in files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
            let doc = viewplan::obs::parse_json(&text)
                .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            viewplan::obs::validate_chrome_trace(&doc)
                .map_err(|e| CliError::Input(format!("{path}: malformed trace: {e}")))?;
            println!("{path}: ok (chrome trace)");
        }
        return Ok(());
    }
    if flag(args, "--validate") {
        let files = positional_args(args);
        if files.is_empty() {
            return Err(CliError::input(
                "bench --validate needs one or more BENCH_*.json files",
            ));
        }
        for path in files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
            let doc = viewplan::obs::parse_json(&text)
                .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            let suite = doc.get("suite").and_then(|s| s.as_str());
            let result = match suite {
                Some("core") => validate_core(&doc),
                Some("serve") => validate_serve(&doc),
                Some("engine") => validate_engine(&doc),
                other => Err(format!("unknown suite tag {other:?}")),
            };
            result.map_err(|e| CliError::Input(format!("{path}: schema violation: {e}")))?;
            println!("{path}: ok ({} suite)", suite.unwrap_or("?"));
        }
        return Ok(());
    }
    let config = TrajectoryConfig {
        smoke: flag(args, "--smoke"),
        threads: threads_arg(args)?,
    };
    let out_dir = std::path::Path::new(option(args, "--out").unwrap_or("."));
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError::Input(format!("cannot create {}: {e}", out_dir.display())))?;
    for (name, doc, validate) in [
        (
            "BENCH_core.json",
            core_trajectory(&config),
            validate_core as fn(&viewplan::obs::Json) -> Result<(), String>,
        ),
        (
            "BENCH_serve.json",
            serve_trajectory(&config),
            validate_serve,
        ),
        (
            "BENCH_engine.json",
            engine_trajectory(&config),
            validate_engine,
        ),
    ] {
        validate(&doc)
            .map_err(|e| CliError::Internal(format!("emitted {name} violates its schema: {e}")))?;
        let path = out_dir.join(name);
        std::fs::write(&path, format!("{}\n", doc.render()))
            .map_err(|e| CliError::Input(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn explain_cmd(args: &[String]) -> Result<(), CliError> {
    let problem = load(file_arg(args)?)?;
    let threads = threads_arg(args)?;
    let _budget = install_budget(budget_arg(args)?);
    // Without ground facts only M1 (subgoal counting) can rank plans;
    // with facts the default matches `plan`'s (M2).
    let default_model = if problem.base.is_empty() { "m1" } else { "m2" };
    let model_name = option(args, "--model").unwrap_or(default_model);
    let model = viewplan::explain::model_from_name(model_name)
        .ok_or_else(|| CliError::Input(format!("unknown cost model {model_name:?}")))?;
    if problem.base.is_empty() && model_name != "m1" {
        return Err(CliError::input(
            "`explain --model m2|m3` needs ground facts in the file (base data); \
             use --model m1 for data-free provenance",
        ));
    }
    let explanation = viewplan::explain::explain(
        &problem.query,
        &problem.views,
        &problem.base,
        model,
        flag(args, "--all-minimal"),
        threads,
    )?;
    if flag(args, "--json") {
        println!("{}", explanation.to_json().render());
    } else {
        print!("{}", explanation.render_human());
    }
    budget_note(budget_outcome());
    Ok(())
}

fn eval(args: &[String]) -> Result<(), CliError> {
    let problem = load(file_arg(args)?)?;
    let threads = threads_arg(args)?;
    let _budget = install_budget(budget_arg(args)?);
    let direct =
        try_evaluate(&problem.query, &problem.base).map_err(|e| CliError::Input(e.to_string()))?;
    println!("direct answer ({} tuple(s)):", direct.len());
    print!("{direct}");
    let config = CoreCoverConfig {
        threads,
        ..CoreCoverConfig::default()
    };
    let result = CoreCover::new(&problem.query, &problem.views)
        .with_config(config)
        .try_run()?;
    match result.rewritings().first() {
        None => println!("\n(no equivalent rewriting over the views)"),
        Some(r) => {
            let vdb = materialize_views(&problem.views, &problem.base);
            let via = try_evaluate(r, &vdb).map_err(|e| CliError::Input(e.to_string()))?;
            println!("\nvia rewriting {r} ({} tuple(s)):", via.len());
            print!("{via}");
            if via == direct {
                println!("\n✓ answers agree (closed-world equivalence)");
            } else if budget_outcome().is_incomplete() {
                // Under an exhausted budget the rewriting may not have
                // been fully verified — a disagreement is truncation,
                // not a bug.
                println!("\n✗ answers disagree under an exhausted budget (rewriting unverified)");
            } else {
                return Err(CliError::Internal(
                    "answers disagree — this is a bug".into(),
                ));
            }
        }
    }
    budget_note(budget_outcome());
    Ok(())
}

/// The serving configuration shared by `batch` and `serve`. Budgets are
/// per-request (each request gets its own deadline/node caps), caching
/// defaults on, and the per-request pipeline stays serial — `--threads`
/// parallelizes *across* requests instead, so the pool is never nested.
fn serve_config(args: &[String]) -> Result<ServeConfig, CliError> {
    let mut config = ServeConfig {
        all_minimal: flag(args, "--all-minimal"),
        budget: budget_arg(args)?,
        ..ServeConfig::default()
    };
    if flag(args, "--no-grouping") {
        config.corecover.group_equivalent_views = false;
        config.corecover.group_view_tuples = false;
    }
    if flag(args, "--no-cache") {
        config.cache_capacity = 0;
    } else if option(args, "--cache-capacity").is_some() {
        config.cache_capacity = u64_arg(args, "--cache-capacity", 4096)? as usize;
    }
    Ok(config)
}

/// Parses a block of text as rules only (no facts), with the same
/// comment handling as [`load`].
/// Parses rule-only source (line-preserving, like [`read_source`]) into
/// a [`Program`]; any non-rule, non-comment line is an input error.
fn parse_rules_program(src: &str, what: &str) -> Result<Program, CliError> {
    let mut rules_src = String::new();
    for raw in src.lines() {
        let stripped = raw.split(['%', '#']).next().unwrap_or("");
        let line = stripped.trim();
        if !line.is_empty() && !line.contains(":-") {
            return Err(CliError::Input(format!(
                "expected a {what} rule, got {line:?}"
            )));
        }
        rules_src.push_str(stripped.trim_end());
        rules_src.push('\n');
    }
    viewplan::cq::parse_program(&rules_src)
        .map_err(|e| CliError::Input(format!("bad {what} rule: {e}")))
}

/// Loads a batch problem file: view rules, a `---` line, query rules.
/// The analyzer gate runs over the whole program (views + queries), so a
/// malformed stream fails fast with exit 2 before anything is served.
fn load_batch(path: &str) -> Result<(ViewSet, Vec<ConjunctiveQuery>), CliError> {
    let source = read_source(path)?;
    let Layout::Batch { view_count } = source.layout else {
        return Err(CliError::input(
            "batch FILE needs a `---` line separating views from queries",
        ));
    };
    if let Some(fact) = source.facts.first() {
        return Err(CliError::Input(format!(
            "batch FILE cannot contain ground facts, got {fact}"
        )));
    }
    analysis_gate(&source, path)?;
    let mut rules = source.program.rules.into_iter();
    let views = ViewSet::from_views(rules.by_ref().take(view_count).map(View::new));
    let queries: Vec<ConjunctiveQuery> = rules.collect();
    if queries.is_empty() {
        return Err(CliError::input("batch FILE has no queries after `---`"));
    }
    Ok((views, queries))
}

/// Builds a generated query stream for `batch --workload`: one view set
/// (from `--seed`) and `--queries` distinct queries over the same base
/// relations, the whole stream repeated `--repeat` times so the cache
/// sees recurring traffic.
fn generated_stream(
    shape: &str,
    args: &[String],
) -> Result<(ViewSet, Vec<ConjunctiveQuery>), CliError> {
    let make: fn(usize, usize, u64) -> WorkloadConfig = match shape {
        "star" => WorkloadConfig::star,
        "chain" => WorkloadConfig::chain,
        "random" => WorkloadConfig::random,
        other => {
            return Err(CliError::Input(format!(
                "unknown workload shape {other:?} (expected star, chain, or random)"
            )))
        }
    };
    let queries = u64_arg(args, "--queries", 16)? as usize;
    let views_n = u64_arg(args, "--views", 12)? as usize;
    let seed = u64_arg(args, "--seed", 1)?;
    let repeat = u64_arg(args, "--repeat", 2)? as usize;
    let views = generate(&make(views_n, 1, seed)).views;
    let mut stream = Vec::with_capacity(queries * repeat);
    for _ in 0..repeat {
        for i in 0..queries {
            stream.push(generate(&make(views_n, 1, seed + i as u64)).query);
        }
    }
    Ok((views, stream))
}

/// One batch request's timed result.
type TimedResult = (Result<ServedAnswer, PlanError>, std::time::Duration);

/// Serves a query stream against one view set. Per-query stdout is
/// deterministic (byte-identical at any thread count and cache setting);
/// the cache/latency observability goes to stderr and `--csv`.
fn batch(args: &[String]) -> Result<(), CliError> {
    let threads = threads_arg(args)?;
    let config = serve_config(args)?;
    let (views, queries) = match option(args, "--workload") {
        Some(shape) => {
            if let Some(extra) = positional_args(args).first() {
                return Err(CliError::Input(format!(
                    "unexpected argument {extra:?} — `--workload` generates its own stream"
                )));
            }
            generated_stream(shape, args)?
        }
        None => load_batch(file_arg(args)?)?,
    };
    let server = BatchServer::with_config(&views, config);
    let started = std::time::Instant::now();
    let results: Vec<TimedResult> = parallel_map(threads, &queries, |q| {
        let t0 = std::time::Instant::now();
        let r = server.serve(q);
        (r, t0.elapsed())
    });
    let total = started.elapsed();
    let mut tally = [0usize; 3]; // complete / truncated / deadline
    let mut errors = 0usize;
    for (i, ((result, _), q)) in results.iter().zip(&queries).enumerate() {
        println!("[{i}] {q}");
        match result {
            Ok(a) => {
                tally[match a.completeness {
                    Completeness::Complete => 0,
                    Completeness::Truncated => 1,
                    Completeness::DeadlineExceeded => 2,
                }] += 1;
                print!("{}", a.render());
            }
            Err(e) => {
                errors += 1;
                println!("error: {e}");
            }
        }
        println!();
    }
    eprintln!(
        "batch: {} quer(ies) on {} thread(s) in {:.1} ms \
         ({} complete, {} truncated, {} deadline-exceeded, {errors} error(s))",
        queries.len(),
        threads,
        total.as_secs_f64() * 1e3,
        tally[0],
        tally[1],
        tally[2]
    );
    match server.cache() {
        None => eprintln!("cache: disabled"),
        Some(c) => {
            let s = c.stats();
            eprintln!(
                "cache: {} hit(s) ({} coalesced), {} miss(es), {} eviction(s), \
                 {} rejected-incomplete, {} resident",
                s.hits, s.coalesced, s.misses, s.evictions, s.rejected_incomplete, s.entries
            );
        }
    }
    if let Some(path) = option(args, "--csv") {
        write_batch_csv(path, &queries, &results)?;
    }
    Ok(())
}

/// Writes the per-request observability CSV (latency and cache columns;
/// these are *not* part of the deterministic per-query output).
fn write_batch_csv(
    path: &str,
    queries: &[ConjunctiveQuery],
    results: &[TimedResult],
) -> Result<(), CliError> {
    use std::fmt::Write as _;
    let mut out =
        String::from("index,query,latency_us,from_cache,completeness,rewritings,m1_cost\n");
    for (i, ((result, latency), q)) in results.iter().zip(queries).enumerate() {
        match result {
            Ok(a) => {
                let _ = writeln!(
                    out,
                    "{i},\"{q}\",{},{},{},{},{}",
                    latency.as_micros(),
                    a.from_cache,
                    a.completeness.label(),
                    a.rewritings.len(),
                    a.best
                        .as_ref()
                        .map_or(String::new(), |b| b.cost.to_string())
                );
            }
            Err(_) => {
                let _ = writeln!(out, "{i},\"{q}\",{},,error,,", latency.as_micros());
            }
        }
    }
    std::fs::write(path, out).map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))
}

/// Loads and VP-gates a views-only file for `serve`.
fn load_views_file(path: &str) -> Result<ViewSet, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    let program = parse_rules_program(&text, "view")?;
    let analysis = analyze_errors(&program, Layout::ViewsOnly);
    if analysis.has_errors() {
        let findings: Vec<String> = analysis
            .errors()
            .map(|d| {
                format!(
                    "{path}:{}:{}: [{}] {}",
                    d.span.line, d.span.column, d.code, d.message
                )
            })
            .collect();
        return Err(CliError::Input(findings.join("\n")));
    }
    Ok(ViewSet::from_views(
        program.rules.into_iter().map(View::new),
    ))
}

/// A `--name MS` option holding a duration in milliseconds.
fn duration_arg(
    args: &[String],
    name: &str,
    default: std::time::Duration,
) -> Result<std::time::Duration, CliError> {
    match option(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .map(std::time::Duration::from_millis)
            .ok_or_else(|| {
                CliError::Input(format!("{name} expects a positive integer, got {v:?}"))
            }),
    }
}

/// The network front-end flags, collected into a [`NetConfig`].
fn net_config(args: &[String]) -> Result<viewplan::serve::NetConfig, CliError> {
    let defaults = viewplan::serve::NetConfig::default();
    Ok(viewplan::serve::NetConfig {
        accept_threads: u64_arg(args, "--accept-threads", defaults.accept_threads as u64)? as usize,
        workers: u64_arg(args, "--workers", defaults.workers as u64)? as usize,
        queue_capacity: u64_arg(args, "--queue-capacity", defaults.queue_capacity as u64)? as usize,
        read_timeout: duration_arg(args, "--read-timeout-ms", defaults.read_timeout)?,
        write_timeout: duration_arg(args, "--write-timeout-ms", defaults.write_timeout)?,
        idle_timeout: duration_arg(args, "--idle-timeout-ms", defaults.idle_timeout)?,
        default_deadline: option(args, "--deadline-ms")
            .map(|_| duration_arg(args, "--deadline-ms", defaults.read_timeout))
            .transpose()?,
        max_frame: defaults.max_frame,
    })
}

/// Interactive serving: views from a file, requests on stdin (or, with
/// `--listen ADDR`, over TCP). Both paths run the same [`LiveCatalog`],
/// so `add-view` / `drop-view` swap the serving snapshot without
/// stopping traffic, with identical response lines.
fn serve(args: &[String]) -> Result<(), CliError> {
    use viewplan::serve::{LiveCatalog, NetServer, ServeFaults};
    let path = file_arg(args)?;
    let config = serve_config(args)?;
    let views = load_views_file(path)?;
    let faults = std::sync::Arc::new(ServeFaults::new(
        Fault::from_env().map_err(CliError::Input)?,
    ));
    let catalog = std::sync::Arc::new(LiveCatalog::with_faults(&views, config, faults));
    if let Some(addr) = option(args, "--listen") {
        let mut server = NetServer::start(catalog, addr, net_config(args)?)
            .map_err(|e| CliError::Input(format!("cannot listen on {addr}: {e}")))?;
        // The resolved address (`:0` picks a port) goes to stderr so
        // scripts — and the integration tests — can find the socket.
        eprintln!("listening on {}", server.local_addr());
        server.wait();
        eprintln!("server stopped");
        return Ok(());
    }
    eprintln!(
        "serving over {} view(s); one request per line (rule, `add-view <rule>`, \
         or `drop-view <name>`), Ctrl-D to finish",
        views.len()
    );
    let stdin = std::io::stdin();
    let mut answered = 0usize;
    for line in std::io::BufRead::lines(stdin.lock()) {
        let line = line.map_err(|e| CliError::Internal(format!("stdin: {e}")))?;
        let src = line.split(['%', '#']).next().unwrap_or("").trim();
        let src = src.trim_end_matches('.');
        if src.is_empty() {
            continue;
        }
        // DDL lines print the same `ok epoch=…` acknowledgement as the
        // socket protocol, so the two front-ends stay script-compatible.
        if let Some(rule) = src.strip_prefix("add-view ") {
            match parse_query(rule.trim()) {
                Err(e) => eprintln!("error: bad view {rule:?}: {e}"),
                Ok(definition) => match catalog.add_view(View { definition }) {
                    Err(e) => eprintln!("error: {e}"),
                    Ok(o) => println!(
                        "ok epoch={} views={} invalidated={} revalidated={}",
                        o.epoch, o.views, o.invalidated, o.revalidated
                    ),
                },
            }
            continue;
        }
        if let Some(name) = src.strip_prefix("drop-view ") {
            match catalog.drop_view(Symbol::new(name.trim())) {
                Err(e) => eprintln!("error: {e}"),
                Ok(o) => println!(
                    "ok epoch={} views={} invalidated={} revalidated={}",
                    o.epoch, o.views, o.invalidated, o.revalidated
                ),
            }
            continue;
        }
        // Pin this request's snapshot: a concurrent swap (impossible on
        // stdin, routine over TCP) never changes an in-flight answer.
        let server = catalog.server();
        match parse_query(src) {
            Err(e) => eprintln!("error: bad query {src:?}: {e}"),
            // Reject ill-typed queries *before* the cache sees them: an
            // arity-mismatched query would otherwise burn a canonical
            // cache entry that can only ever answer "no rewriting".
            Ok(q) => match server.validate(&q) {
                Err(e) => eprintln!("error: {e}"),
                Ok(()) => match server.serve(&q) {
                    Err(e) => eprintln!("error: {e}"),
                    Ok(a) => {
                        answered += 1;
                        print!("{}", a.render());
                        println!();
                    }
                },
            },
        }
    }
    let stats = catalog
        .server()
        .cache()
        .map(|c| c.stats())
        .unwrap_or_default();
    eprintln!(
        "served {answered} quer(ies); cache: {} hit(s) ({} coalesced), {} miss(es); epoch {}",
        stats.hits,
        stats.coalesced,
        stats.misses,
        catalog.epoch()
    );
    Ok(())
}

/// Closed-loop load generator against a running `serve --listen`
/// endpoint: `--clients` threads each offer `--requests` queries (from
/// FILE, one rule per line), retrying shed responses with jittered
/// exponential backoff. The report must account for every offered
/// request; a stale-epoch answer or an unaccounted request is a server
/// bug (exit 1).
fn loadgen(args: &[String]) -> Result<(), CliError> {
    use viewplan_bench::loadgen::{run_loadgen, LoadgenConfig};
    let addr = option(args, "--connect")
        .ok_or_else(|| CliError::input("loadgen needs --connect HOST:PORT"))?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| CliError::Input(format!("bad --connect address {addr:?}: {e}")))?;
    let path = file_arg(args)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    let program = parse_rules_program(&text, "query")?;
    if program.rules.is_empty() {
        return Err(CliError::Input(format!("{path} contains no query rules")));
    }
    let queries: Vec<String> = program.rules.iter().map(|q| q.to_string()).collect();
    let config = LoadgenConfig {
        clients: u64_arg(args, "--clients", 4)? as usize,
        requests_per_client: u64_arg(args, "--requests", 25)? as usize,
        deadline_ms: option(args, "--deadline-ms")
            .map(|_| u64_arg(args, "--deadline-ms", 1))
            .transpose()?,
        max_retries: u64_arg(args, "--max-retries", 8)? as u32,
        seed: u64_arg(args, "--seed", 20_010_521)?,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(addr, &queries, &config);
    println!(
        "loadgen: {} offered on {} client(s) in {:.1} ms — {} ok ({} cached), \
         {} shed, {} error(s), {} retries",
        report.offered,
        config.clients,
        report.elapsed.as_secs_f64() * 1e3,
        report.ok,
        report.cached,
        report.shed,
        report.errors,
        report.retries,
    );
    println!(
        "latency: p50 {} us, p95 {} us, p99 {} us; throughput {:.0} rps",
        report.latency_percentile(0.50),
        report.latency_percentile(0.95),
        report.latency_percentile(0.99),
        report.throughput_rps()
    );
    if report.failed_after_retries > 0 {
        println!(
            "note: {} request(s) failed after exhausting retries",
            report.failed_after_retries
        );
    }
    if report.stale_epoch > 0 {
        return Err(CliError::Internal(format!(
            "{} answer(s) regressed to an older epoch — snapshot swap bug",
            report.stale_epoch
        )));
    }
    if !report.accounted() {
        return Err(CliError::Internal(format!(
            "accounting broken: ok {} + shed {} + errors {} + failed {} != offered {}",
            report.ok, report.shed, report.errors, report.failed_after_retries, report.offered
        )));
    }
    Ok(())
}

/// Stress-runs the whole pipeline over generated workloads under a tight
/// per-query budget, post-verifying every returned rewriting outside the
/// budget. Exits 0 when every query returned cleanly with an honest
/// completeness marker; a rewriting failing post-hoc verification is an
/// internal error (exit 1).
fn soak(args: &[String]) -> Result<(), CliError> {
    if let Some(extra) = positional_args(args).first() {
        return Err(CliError::Input(format!(
            "unexpected argument {extra:?} — `soak` generates its own workloads"
        )));
    }
    let queries = u64_arg(args, "--queries", 24)? as usize;
    let views = u64_arg(args, "--views", 12)? as usize;
    let seed0 = u64_arg(args, "--seed", 1)?;
    let threads = threads_arg(args)?;
    let mut spec = budget_arg(args)?;
    if spec.is_unlimited() {
        // A soak without an explicit budget still stresses degradation.
        spec = spec.timeout_ms(50).node_budget(2_000);
    }
    let config = CoreCoverConfig {
        threads,
        ..CoreCoverConfig::default()
    };
    let mut tally = [0usize; 3]; // complete / truncated / deadline
    let mut rewritings_total = 0usize;
    let mut bad: Vec<String> = Vec::new();
    for i in 0..queries {
        let seed = seed0 + i as u64;
        let wcfg = match i % 3 {
            0 => WorkloadConfig::star(views, 1, seed),
            1 => WorkloadConfig::chain(views, 1, seed),
            _ => WorkloadConfig::random(views, 1, seed),
        };
        let w = generate(&wcfg);
        // Fresh budget per query: the deadline restarts, node caps are
        // per-search anyway. The guard drops before verification so the
        // post-hoc equivalence checks run unbudgeted.
        let result = {
            let _g = viewplan::obs::budget::install(spec.build());
            CoreCover::new(&w.query, &w.views)
                .with_config(config.clone())
                .try_run_all_minimal()
        }
        .map_err(|e| CliError::Internal(format!("generated workload rejected: {e}")))?;
        tally[match result.stats.completeness {
            Completeness::Complete => 0,
            Completeness::Truncated => 1,
            Completeness::DeadlineExceeded => 2,
        }] += 1;
        rewritings_total += result.rewritings().len();
        for r in result.rewritings() {
            let equivalent = expand(r, &w.views).is_ok_and(|exp| are_equivalent(&exp, &w.query));
            if !equivalent {
                bad.push(format!("seed {seed}: {r}"));
            }
        }
    }
    println!(
        "soak: {queries} queries, {rewritings_total} rewriting(s); \
         {} complete, {} truncated, {} deadline-exceeded",
        tally[0], tally[1], tally[2]
    );
    if bad.is_empty() {
        println!("all returned rewritings verified equivalent");
        Ok(())
    } else {
        Err(CliError::Internal(format!(
            "{} rewriting(s) failed post-hoc verification:\n  {}",
            bad.len(),
            bad.join("\n  ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::{file_arg, option, positional_args, threads_arg, CliError};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn file_arg_finds_plain_positional() {
        assert_eq!(file_arg(&args(&["problem.vp"])).unwrap(), "problem.vp");
        assert_eq!(
            file_arg(&args(&["--all-minimal", "problem.vp"])).unwrap(),
            "problem.vp"
        );
    }

    #[test]
    fn file_arg_skips_option_values() {
        assert_eq!(
            file_arg(&args(&["--model", "m2", "problem.vp"])).unwrap(),
            "problem.vp"
        );
        assert_eq!(
            file_arg(&args(&["problem.vp", "--baseline", "naive"])).unwrap(),
            "problem.vp"
        );
        assert_eq!(
            file_arg(&args(&["--stats-json", "out.json", "problem.vp"])).unwrap(),
            "problem.vp"
        );
    }

    #[test]
    fn file_named_like_an_option_value_is_not_dropped() {
        // Regression: the old scan dropped any positional equal to some
        // option's value, so a file literally named `m2` was "missing".
        assert_eq!(file_arg(&args(&["m2", "--model", "m2"])).unwrap(), "m2");
        assert_eq!(
            file_arg(&args(&["--baseline", "naive", "naive"])).unwrap(),
            "naive"
        );
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(file_arg(&args(&[])).is_err());
        assert!(file_arg(&args(&["--model", "m2"])).is_err());
        // A value-taking option at the end consumes nothing extra.
        assert!(file_arg(&args(&["--stats-json"])).is_err());
    }

    #[test]
    fn extra_positionals_are_rejected() {
        match file_arg(&args(&["a.vp", "b.vp"])).unwrap_err() {
            CliError::Input(msg) => assert!(msg.contains("b.vp")),
            other => panic!("expected an input error, got {other:?}"),
        }
    }

    #[test]
    fn threads_arg_parses_and_rejects() {
        assert_eq!(threads_arg(&args(&["f.vp", "--threads", "8"])).unwrap(), 8);
        assert!(threads_arg(&args(&["f.vp"])).unwrap() >= 1);
        for bad in [
            &["--threads", "0"][..],
            &["--threads", "eight"],
            &["--threads", "-2"],
        ] {
            match threads_arg(&args(bad)).unwrap_err() {
                CliError::Input(msg) => assert!(msg.contains("--threads")),
                other => panic!("expected an input error, got {other:?}"),
            }
        }
    }

    #[test]
    fn positional_order_is_preserved() {
        assert_eq!(
            positional_args(&args(&["--stats", "x", "--model", "m3", "y"])),
            ["x", "y"]
        );
    }

    #[test]
    fn option_lookup_still_works() {
        let a = args(&["plan.vp", "--model", "m3", "--stats-json", "o.json"]);
        assert_eq!(option(&a, "--model"), Some("m3"));
        assert_eq!(option(&a, "--stats-json"), Some("o.json"));
        assert_eq!(option(&a, "--baseline"), None);
    }
}
