//! `viewplan explain` — replay a rewrite/plan run with full provenance.
//!
//! Where `rewrite` and `plan` print only the winning answer, `explain`
//! reports *why* that answer won: which views the VP006 analyzer pruned
//! before the search started, every candidate cover `CoreCover` built
//! with the verdict that kept or rejected it (accepted, renaming variant
//! of an earlier cover, failed the equivalence check, or left unverified
//! by an exhausted budget), and — when the input carries ground facts —
//! the per-term cost breakdown of the winning plan against the runner-up
//! under the chosen cost model.
//!
//! The per-term numbers are *measured*, not estimated: the chosen plan is
//! executed against the materialized view database and each step reports
//! `size(gᵢ)` (the joined relation) and the intermediate-result size
//! after the step (`IRᵢ` under M2, `GSRᵢ` under M3 where the plan's drop
//! annotations have been applied). Under M1 no data is needed and the
//! per-term cost is simply 1 per subgoal.
//!
//! Everything here is deterministic for a fixed input file, which is what
//! lets the `explain --json` golden tests pin the output byte-for-byte.

use std::collections::BTreeMap;

use viewplan_core::{CandidateVerdict, CoreCover, CoreCoverConfig};
use viewplan_cost::{
    try_optimal_m2_order, try_optimal_m3_plan, CostModel, DropPolicy, ExactOracle, PhysicalPlan,
    PlanError,
};
use viewplan_cq::{ConjunctiveQuery, ViewSet};
use viewplan_engine::{materialize_views, Database};
use viewplan_obs::Json;

/// How a candidate cover fared, in report form.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// The candidate rewriting, rendered.
    pub rewriting: String,
    /// Names of the views its body uses (in body order, deduplicated).
    pub views_used: Vec<String>,
    /// Machine-readable verdict tag: `accepted`, `duplicate_variant`,
    /// `not_equivalent`, or `unverified`.
    pub verdict: &'static str,
    /// For `duplicate_variant`: index (into this list) of the candidate
    /// this one renames.
    pub variant_of: Option<usize>,
}

/// One step of an explained plan with its measured sizes.
#[derive(Clone, Debug)]
pub struct TermReport {
    /// The subgoal joined at this step, rendered.
    pub atom: String,
    /// `size(gᵢ)` — tuples in the joined view relation (absent under M1).
    pub relation_size: Option<u64>,
    /// Intermediate-result size after this step, post-drop (absent
    /// under M1).
    pub intermediate_size: Option<u64>,
    /// Variables dropped after this step (M3 only), sorted.
    pub dropped: Vec<String>,
    /// This term's cost contribution under the model.
    pub cost: f64,
}

/// A fully explained physical plan.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// Index into [`Explanation::candidates`] of the rewriting planned.
    pub candidate: usize,
    /// The rewriting, rendered.
    pub rewriting: String,
    /// The physical plan, rendered (M1 renders the unordered body).
    pub plan: String,
    /// Total cost under the model, as reported by the plan search.
    pub cost: f64,
    /// Per-term breakdown; sums to the measured plan cost.
    pub terms: Vec<TermReport>,
}

/// The complete provenance report behind one `rewrite`/`plan` answer.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The input query, rendered.
    pub query: String,
    /// The minimized query the search actually ran on.
    pub minimized_query: String,
    /// Whether the minimized query's hypergraph is acyclic (GYO reduces
    /// it fully) — when true, containment checks against it are
    /// fast-path eligible and Yannakakis evaluation applies. Structural:
    /// independent of the `VIEWPLAN_ACYCLIC` switch.
    pub acyclic: bool,
    /// Hypertree-width estimate of the minimized query (1 iff acyclic).
    pub hypertree_width: usize,
    /// Cost model tag: `m1`, `m2`, or `m3`.
    pub model: &'static str,
    /// Whether all minimal covers were enumerated (vs. globally minimal).
    pub all_minimal: bool,
    /// Views in the input.
    pub views_total: usize,
    /// Equivalence classes among them.
    pub view_classes: usize,
    /// Views discarded by the VP006 usability pre-filter.
    pub pruned_views: Vec<String>,
    /// Views that survived into the search.
    pub surviving_views: Vec<String>,
    /// View tuples enumerated / representatives after grouping.
    pub view_tuples: usize,
    /// Representative tuples after tuple grouping.
    pub representative_tuples: usize,
    /// Tuples whose core came out empty (filter candidates).
    pub empty_core_tuples: usize,
    /// True when enumeration hit the rewriting cap.
    pub truncated: bool,
    /// Budget outcome of the run, rendered.
    pub completeness: String,
    /// Every candidate cover with its verdict.
    pub candidates: Vec<CandidateReport>,
    /// The cheapest plan under the model, when one could be built.
    pub winner: Option<PlanReport>,
    /// The second-cheapest plan, when at least two candidates planned.
    pub runner_up: Option<PlanReport>,
}

fn verdict_tag(v: &CandidateVerdict) -> &'static str {
    match v {
        CandidateVerdict::Accepted => "accepted",
        CandidateVerdict::DuplicateVariant { .. } => "duplicate_variant",
        CandidateVerdict::NotEquivalent => "not_equivalent",
        CandidateVerdict::Unverified => "unverified",
    }
}

/// Renders an M1 "plan": the body as an unordered set.
fn m1_plan_string(r: &ConjunctiveQuery) -> String {
    let atoms: Vec<String> = r.body.iter().map(|a| a.to_string()).collect();
    format!("{{{}}}", atoms.join(", "))
}

/// Builds the per-term breakdown by executing `plan` against the view
/// database — the reported sizes are exact, the same quantities the
/// `ExactOracle` costed the plan with.
fn measured_terms(
    plan: &PhysicalPlan,
    head: &viewplan_cq::Atom,
    vdb: &Database,
) -> Result<Vec<TermReport>, PlanError> {
    let trace = plan.try_execute(head, vdb)?;
    Ok(plan
        .steps
        .iter()
        .zip(trace.subgoal_sizes.iter().zip(&trace.intermediate_sizes))
        .map(|(step, (&gsize, &isize))| {
            let mut dropped: Vec<String> = step.drop_after.iter().map(|s| s.as_str()).collect();
            dropped.sort();
            TermReport {
                atom: step.atom.to_string(),
                relation_size: Some(gsize as u64),
                intermediate_size: Some(isize as u64),
                dropped,
                cost: gsize as f64 + isize as f64,
            }
        })
        .collect())
}

/// Plans one accepted candidate under the model; `Ok(None)` when the plan
/// search could not produce a plan (too wide for the model's search, or
/// the budget exhausted mid-search), `Err` when the engine rejected the
/// chosen plan outright.
fn plan_candidate(
    model: CostModel,
    query: &ConjunctiveQuery,
    views: &ViewSet,
    candidate: usize,
    rewriting: &ConjunctiveQuery,
    vdb: &Database,
) -> Result<Option<PlanReport>, PlanError> {
    match model {
        CostModel::M1 => Ok(Some(PlanReport {
            candidate,
            rewriting: rewriting.to_string(),
            plan: m1_plan_string(rewriting),
            cost: rewriting.body.len() as f64,
            terms: rewriting
                .body
                .iter()
                .map(|a| TermReport {
                    atom: a.to_string(),
                    relation_size: None,
                    intermediate_size: None,
                    dropped: Vec::new(),
                    cost: 1.0,
                })
                .collect(),
        })),
        CostModel::M2 => {
            let mut oracle = ExactOracle::new(vdb);
            let Some((order, _, cost)) = try_optimal_m2_order(&rewriting.body, &mut oracle)
                .ok()
                .flatten()
            else {
                return Ok(None);
            };
            let atoms: Vec<viewplan_cq::Atom> =
                order.iter().map(|&i| rewriting.body[i].clone()).collect();
            let plan = PhysicalPlan::ordered(atoms);
            Ok(Some(PlanReport {
                candidate,
                rewriting: rewriting.to_string(),
                plan: plan.to_string(),
                cost,
                terms: measured_terms(&plan, &rewriting.head, vdb)?,
            }))
        }
        CostModel::M3(policy) => {
            let mut oracle = ExactOracle::new(vdb);
            let Some((plan, cost)) =
                try_optimal_m3_plan(query, views, rewriting, policy, &mut oracle)
                    .ok()
                    .flatten()
            else {
                return Ok(None);
            };
            Ok(Some(PlanReport {
                candidate,
                rewriting: rewriting.to_string(),
                plan: plan.to_string(),
                cost,
                terms: measured_terms(&plan, &rewriting.head, vdb)?,
            }))
        }
    }
}

/// Runs the rewrite search with provenance collection on and explains the
/// outcome. `model` needs ground facts (a non-empty `base`) for M2/M3;
/// the CLI enforces that before calling here. `threads` is forwarded to
/// the CoreCover search.
pub fn explain(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    base: &Database,
    model: CostModel,
    all_minimal: bool,
    threads: usize,
) -> Result<Explanation, PlanError> {
    let config = CoreCoverConfig {
        threads,
        collect_provenance: true,
        ..CoreCoverConfig::default()
    };
    let cc = CoreCover::new(query, views).with_config(config);
    let result = if all_minimal {
        cc.try_run_all_minimal()?
    } else {
        cc.try_run()?
    };
    let provenance = result
        .provenance
        .as_ref()
        .expect("collect_provenance was set");

    let candidates: Vec<CandidateReport> = provenance
        .candidates
        .iter()
        .map(|c| CandidateReport {
            rewriting: c.rewriting.to_string(),
            views_used: c.views_used.clone(),
            verdict: verdict_tag(&c.verdict),
            variant_of: match c.verdict {
                CandidateVerdict::DuplicateVariant { of } => Some(of),
                _ => None,
            },
        })
        .collect();

    // Rank every accepted candidate by its best plan cost under the
    // model; ties break on candidate order, so the report is stable.
    let (winner, runner_up) = {
        let vdb = materialize_views(views, base);
        let mut planned: Vec<PlanReport> = Vec::new();
        for (i, c) in provenance
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.verdict == CandidateVerdict::Accepted)
        {
            if let Some(report) = plan_candidate(model, query, views, i, &c.rewriting, &vdb)? {
                planned.push(report);
            }
        }
        planned.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.candidate.cmp(&b.candidate))
        });
        let mut it = planned.into_iter();
        (it.next(), it.next())
    };

    let s = &result.stats;
    Ok(Explanation {
        query: query.to_string(),
        minimized_query: result.minimized_query.to_string(),
        acyclic: viewplan_cq::is_acyclic(&result.minimized_query.body),
        hypertree_width: viewplan_cq::hypertree_width_estimate(&result.minimized_query.body),
        model: match model {
            CostModel::M1 => "m1",
            CostModel::M2 => "m2",
            CostModel::M3(_) => "m3",
        },
        all_minimal,
        views_total: s.views,
        view_classes: s.view_classes,
        pruned_views: provenance.pruned_views.clone(),
        surviving_views: provenance.surviving_views.clone(),
        view_tuples: s.view_tuples,
        representative_tuples: s.representative_tuples,
        empty_core_tuples: s.empty_core_tuples,
        truncated: s.truncated,
        completeness: s.completeness.to_string(),
        candidates,
        winner,
        runner_up,
    })
}

/// Convenience: explain with the default drop policy for a model name.
/// Returns `None` for an unknown name.
pub fn model_from_name(name: &str) -> Option<CostModel> {
    match name {
        "m1" => Some(CostModel::M1),
        "m2" => Some(CostModel::M2),
        "m3" => Some(CostModel::M3(DropPolicy::SmartCostBased)),
        _ => None,
    }
}

fn json_plan(p: &PlanReport) -> Json {
    let mut o = BTreeMap::new();
    o.insert("candidate".into(), Json::num(p.candidate as u64));
    o.insert("rewriting".into(), Json::str(&p.rewriting));
    o.insert("plan".into(), Json::str(&p.plan));
    o.insert("cost".into(), Json::Number(p.cost));
    o.insert(
        "terms".into(),
        Json::Array(
            p.terms
                .iter()
                .map(|t| {
                    let mut term = BTreeMap::new();
                    term.insert("atom".into(), Json::str(&t.atom));
                    if let Some(g) = t.relation_size {
                        term.insert("relation_size".into(), Json::num(g));
                    }
                    if let Some(i) = t.intermediate_size {
                        term.insert("intermediate_size".into(), Json::num(i));
                    }
                    if !t.dropped.is_empty() {
                        term.insert(
                            "dropped".into(),
                            Json::Array(t.dropped.iter().map(Json::str).collect()),
                        );
                    }
                    term.insert("cost".into(), Json::Number(t.cost));
                    Json::Object(term)
                })
                .collect(),
        ),
    );
    Json::Object(o)
}

impl Explanation {
    /// The stable JSON form (`explain --json`). Schema version 1; the
    /// golden tests pin this byte-for-byte, so every field here must be
    /// deterministic for a fixed input file.
    pub fn to_json(&self) -> Json {
        let strings = |v: &[String]| Json::Array(v.iter().map(Json::str).collect());
        let mut o = BTreeMap::new();
        o.insert("schema_version".into(), Json::num(1));
        o.insert("query".into(), Json::str(&self.query));
        o.insert("minimized_query".into(), Json::str(&self.minimized_query));
        let mut structure = BTreeMap::new();
        structure.insert("acyclic".into(), Json::Bool(self.acyclic));
        structure.insert(
            "hypertree_width".into(),
            Json::num(self.hypertree_width as u64),
        );
        o.insert("structure".into(), Json::Object(structure));
        o.insert("model".into(), Json::str(self.model));
        o.insert("all_minimal".into(), Json::Bool(self.all_minimal));

        let mut views = BTreeMap::new();
        views.insert("total".into(), Json::num(self.views_total as u64));
        views.insert("classes".into(), Json::num(self.view_classes as u64));
        views.insert("pruned".into(), strings(&self.pruned_views));
        views.insert("surviving".into(), strings(&self.surviving_views));
        o.insert("views".into(), Json::Object(views));

        let mut search = BTreeMap::new();
        search.insert("view_tuples".into(), Json::num(self.view_tuples as u64));
        search.insert(
            "representative_tuples".into(),
            Json::num(self.representative_tuples as u64),
        );
        search.insert(
            "empty_core_tuples".into(),
            Json::num(self.empty_core_tuples as u64),
        );
        search.insert("truncated".into(), Json::Bool(self.truncated));
        search.insert("completeness".into(), Json::str(&self.completeness));
        o.insert("search".into(), Json::Object(search));

        o.insert(
            "candidates".into(),
            Json::Array(
                self.candidates
                    .iter()
                    .map(|c| {
                        let mut cand = BTreeMap::new();
                        cand.insert("rewriting".into(), Json::str(&c.rewriting));
                        cand.insert("views_used".into(), strings(&c.views_used));
                        cand.insert("verdict".into(), Json::str(c.verdict));
                        if let Some(of) = c.variant_of {
                            cand.insert("variant_of".into(), Json::num(of as u64));
                        }
                        Json::Object(cand)
                    })
                    .collect(),
            ),
        );
        o.insert(
            "winner".into(),
            self.winner.as_ref().map_or(Json::Null, json_plan),
        );
        o.insert(
            "runner_up".into(),
            self.runner_up.as_ref().map_or(Json::Null, json_plan),
        );
        Json::Object(o)
    }

    /// The human-readable form (`explain` without `--json`).
    pub fn render_human(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "query:           {}", self.query);
        let _ = writeln!(out, "minimized query: {}", self.minimized_query);
        if self.acyclic {
            let _ = writeln!(
                out,
                "structure:       acyclic (hypertree width 1) — semijoin \
                 fast path eligible"
            );
        } else {
            let _ = writeln!(
                out,
                "structure:       cyclic (hypertree width ~{}) — homomorphism search",
                self.hypertree_width
            );
        }
        let _ = writeln!(
            out,
            "model: {}   covers: {}",
            self.model,
            if self.all_minimal {
                "all-minimal"
            } else {
                "globally-minimal"
            }
        );

        let _ = writeln!(
            out,
            "\nviews: {} ({} equivalence class(es)); {} pruned by VP006, {} surviving",
            self.views_total,
            self.view_classes,
            self.pruned_views.len(),
            self.surviving_views.len()
        );
        for v in &self.pruned_views {
            let _ = writeln!(out, "  - {v}  (pruned: cannot appear in any rewriting)");
        }
        for v in &self.surviving_views {
            let _ = writeln!(out, "  + {v}");
        }

        let _ = writeln!(
            out,
            "\nsearch: {} view tuple(s) -> {} representative(s); {} empty-core; completeness: {}{}",
            self.view_tuples,
            self.representative_tuples,
            self.empty_core_tuples,
            self.completeness,
            if self.truncated {
                " (truncated at the rewriting cap)"
            } else {
                ""
            }
        );

        let _ = writeln!(out, "\ncandidate covers ({}):", self.candidates.len());
        for (i, c) in self.candidates.iter().enumerate() {
            let verdict = match (c.verdict, c.variant_of) {
                ("duplicate_variant", Some(of)) => {
                    format!("rejected: variable-renaming variant of #{of}")
                }
                ("accepted", _) => "accepted".into(),
                ("not_equivalent", _) => "rejected: expansion not equivalent to the query".into(),
                ("unverified", _) => "unverified: budget exhausted before the check".into(),
                (other, _) => other.into(),
            };
            let _ = writeln!(out, "  #{i} {}", c.rewriting);
            let _ = writeln!(
                out,
                "      views: [{}]  verdict: {verdict}",
                c.views_used.join(", ")
            );
        }

        let mut plan_section = |title: &str, p: &PlanReport| {
            let _ = writeln!(out, "\n{title} (candidate #{}):", p.candidate);
            let _ = writeln!(out, "  rewriting: {}", p.rewriting);
            let _ = writeln!(out, "  plan:      {}", p.plan);
            let _ = writeln!(out, "  cost:      {}", p.cost);
            for t in &p.terms {
                let sizes = match (t.relation_size, t.intermediate_size) {
                    (Some(g), Some(ir)) => format!("size(g)={g} size(IR)={ir}"),
                    _ => "unit".into(),
                };
                let dropped = if t.dropped.is_empty() {
                    String::new()
                } else {
                    format!("  drop[{}]", t.dropped.join(", "))
                };
                let _ = writeln!(out, "    {}  {sizes} cost={}{dropped}", t.atom, t.cost);
            }
        };
        match (&self.winner, &self.runner_up) {
            (Some(w), Some(r)) => {
                plan_section("winning plan", w);
                plan_section("runner-up plan", r);
            }
            (Some(w), None) => {
                plan_section("winning plan", w);
                let _ = writeln!(out, "\n(no runner-up: only one candidate could be planned)");
            }
            (None, _) => {
                let _ = writeln!(out, "\n(no plan: no accepted candidate could be planned)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    fn example_1_1() -> (ConjunctiveQuery, ViewSet) {
        let query =
            parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v1(M, D, C)    :- car(M, D), loc(D, C).
             v2(S, M, C)    :- part(S, M, C).
             v3(S)          :- car(M, anderson), loc(anderson, C), part(S, M, C).
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
             v5(M, D, C)    :- car(M, D), loc(D, C).
             v6(X, Y)       :- highway(X, Y).",
        )
        .unwrap();
        (query, views)
    }

    #[test]
    fn m1_explanation_reports_pruning_and_verdicts() {
        let (query, views) = example_1_1();
        let e = explain(&query, &views, &Database::new(), CostModel::M1, false, 1).unwrap();
        // v6 mentions a predicate the query never uses: VP006 prunes it.
        assert_eq!(e.pruned_views, vec!["v6".to_string()]);
        assert!(!e.surviving_views.contains(&"v6".to_string()));
        assert_eq!(e.views_total, 6);
        assert!(!e.candidates.is_empty());
        // The globally-minimal cover is the single v4 access, and every
        // candidate carries a verdict tag.
        let winner = e.winner.as_ref().expect("a winner under M1");
        assert_eq!(winner.cost, 1.0);
        assert!(winner.rewriting.contains("v4"));
        for c in &e.candidates {
            assert!(matches!(
                c.verdict,
                "accepted" | "duplicate_variant" | "not_equivalent" | "unverified"
            ));
        }
    }

    #[test]
    fn all_minimal_m1_has_a_runner_up_and_ranks_by_subgoal_count() {
        let (query, views) = example_1_1();
        let e = explain(&query, &views, &Database::new(), CostModel::M1, true, 1).unwrap();
        let w = e.winner.as_ref().expect("winner");
        let r = e
            .runner_up
            .as_ref()
            .expect("runner-up among minimal covers");
        assert!(w.cost <= r.cost);
        assert_eq!(w.terms.iter().map(|t| t.cost).sum::<f64>(), w.cost);
    }

    #[test]
    fn json_form_is_stable_and_round_trips() {
        let (query, views) = example_1_1();
        let e = explain(&query, &views, &Database::new(), CostModel::M1, false, 1).unwrap();
        let doc = e.to_json().render();
        let parsed = viewplan_obs::parse_json(&doc).unwrap();
        assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("m1"));
        assert!(parsed.get("winner").unwrap().get("cost").is_some());
        // Structural acyclicity provenance (independent of the
        // VIEWPLAN_ACYCLIC switch, so goldens hold under both settings).
        let structure = parsed.get("structure").unwrap();
        assert_eq!(structure.get("hypertree_width").unwrap().as_u64(), Some(1));
        // Deterministic: a second run renders the identical document.
        let e2 = explain(&query, &views, &Database::new(), CostModel::M1, false, 1).unwrap();
        assert_eq!(e2.to_json().render(), doc);
    }

    #[test]
    fn m3_breakdown_sums_to_the_measured_cost() {
        // Example 6.1 / Figure 5: the renaming drop makes the M3 plan
        // cheaper than its M2 counterpart.
        let query = parse_query("q(A) :- r(A, B), s(B, C), t(D, B)").unwrap();
        let views = parse_views(
            "v1(A, B) :- r(A, B).
             v2(B, C) :- s(B, C).
             v3(D, B) :- t(D, B).",
        )
        .unwrap();
        let mut base = Database::new();
        base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let e = explain(
            &query,
            &views,
            &base,
            CostModel::M3(DropPolicy::SmartCostBased),
            false,
            1,
        )
        .unwrap();
        let w = e.winner.as_ref().expect("an M3 winner");
        let measured: f64 = w.terms.iter().map(|t| t.cost).sum();
        assert_eq!(measured, w.cost, "per-term breakdown must sum to the cost");
        assert_eq!(w.terms.len(), 3);
        assert!(w.terms.iter().all(|t| t.relation_size.is_some()));
    }
}
