//! `viewplan` — generating efficient plans for queries using views.
//!
//! A Rust reproduction of *"Generating Efficient Plans for Queries Using
//! Views"* (Chen Li, Foto N. Afrati, Jeffrey D. Ullman; ACM SIGMOD 2001):
//! equivalent rewritings of conjunctive queries over materialized views
//! under the closed-world assumption, with the `CoreCover` /
//! `CoreCover*` algorithms, cost models **M1** (subgoal count), **M2**
//! (relation + intermediate sizes), and **M3** (generalized supplementary
//! relations with the §6.2 attribute-dropping heuristic).
//!
//! This facade re-exports the whole workspace:
//!
//! * [`cq`] — conjunctive queries, views, parser;
//! * [`analyze`] — the static-analysis pass (VP001–VP007 diagnostics)
//!   behind `viewplan check` and the processing commands' input gate;
//! * [`containment`] — containment mappings, equivalence, minimization,
//!   expansion;
//! * [`engine`] — the in-memory relational engine and canonical databases;
//! * [`core`] — `CoreCover`, tuple-cores, the rewriting lattice, and the
//!   naive / MiniCon baselines;
//! * [`cost`] — cost models, size oracles, plan search, the optimizer;
//! * [`serve`] — the batched multi-query serving layer: prepared view
//!   sets shared across workers and the canonical-key rewriting cache;
//! * [`workload`] — the §7 star/chain/random generators;
//! * [`obs`] — the metrics registry, span timers, and stats reporters
//!   behind the CLI's `--stats` / `--stats-json` flags.
//!
//! # Quickstart
//!
//! ```
//! use viewplan::prelude::*;
//!
//! // The paper's running "car-loc-part" example (Example 1.1).
//! let query = parse_query(
//!     "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)",
//! ).unwrap();
//! let views = parse_views("
//!     v1(M, D, C)    :- car(M, D), loc(D, C).
//!     v2(S, M, C)    :- part(S, M, C).
//!     v3(S)          :- car(M, anderson), loc(anderson, C), part(S, M, C).
//!     v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
//!     v5(M, D, C)    :- car(M, D), loc(D, C).
//! ").unwrap();
//!
//! // The globally-minimal rewriting is P4: one access to v4.
//! let result = CoreCover::new(&query, &views).run();
//! assert_eq!(result.rewritings().len(), 1);
//! assert_eq!(
//!     result.rewritings()[0].to_string(),
//!     "q1(S, C) :- v4(M, anderson, C, S)",
//! );
//! ```

pub mod explain;

pub use viewplan_analyze as analyze;
pub use viewplan_containment as containment;
pub use viewplan_core as core;
pub use viewplan_cost as cost;
pub use viewplan_cq as cq;
pub use viewplan_engine as engine;
pub use viewplan_extended as extended;
pub use viewplan_obs as obs;
pub use viewplan_serve as serve;
pub use viewplan_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use viewplan_containment::{are_equivalent, expand, is_contained_in, is_variant, minimize};
    pub use viewplan_core::{
        is_locally_minimal, minicon_rewritings, naive_gmrs, tuple_core, view_tuples, CoreCover,
        CoreCoverConfig, MiniCon,
    };
    pub use viewplan_cost::{
        optimal_m2_order, optimal_m3_plan, Catalog, CostModel, DropPolicy, EstimateOracle,
        ExactOracle, Optimizer, OptimizerConfig, PhysicalPlan, SizeOracle,
    };
    pub use viewplan_cq::{
        acyclic_enabled, hypertree_width_estimate, install_acyclic, is_acyclic, join_forest,
        parse_atom, parse_query, parse_views, set_acyclic_default, Atom, ConjunctiveQuery,
        Substitution, Symbol, Term, View, ViewSet,
    };
    pub use viewplan_engine::{
        canonical_database, evaluate, execute_annotated, execute_ordered, materialize_views,
        set_default_engine, try_evaluate, try_execute_annotated, try_execute_ordered, Database,
        Engine, EngineError, Relation, Value,
    };
    pub use viewplan_serve::{BatchServer, ServeConfig, ServedAnswer};
    pub use viewplan_workload::{generate, random_database, Shape, Workload, WorkloadConfig};
}
