//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this API-compatible subset. It runs each benchmark
//! for a fixed number of timed samples (after a short warm-up) and
//! prints mean/median wall-clock per iteration — no statistics engine,
//! no HTML reports, but the same bench sources compile and produce
//! comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    /// `--bench NAME` / first CLI arg: only run benchmarks whose id
    /// contains this substring.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named benchmark id: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.render();
        self.run(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            target_samples: samples,
        };
        f(&mut bencher);
        bencher.report(&full);
    }
}

/// Accepts both `&str` and [`BenchmarkId`] for `bench_function`.
pub struct BenchmarkIdOrStr(BenchmarkId);

impl BenchmarkIdOrStr {
    fn render(&self) -> String {
        self.0.render()
    }
}

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> BenchmarkIdOrStr {
        BenchmarkIdOrStr(BenchmarkId::from_parameter(s))
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> BenchmarkIdOrStr {
        BenchmarkIdOrStr(BenchmarkId::from_parameter(s))
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> BenchmarkIdOrStr {
        BenchmarkIdOrStr(id)
    }
}

/// Collects per-iteration timings inside `b.iter(..)`.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few untimed runs so lazy initialisation and cache
        // effects do not land in the first sample.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{id:<60} mean {:>12} median {:>12} ({} samples)",
            format_duration(mean),
            format_duration(median),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("matches_nothing_zzz".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0usize;
        group.bench_function("skipped", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
