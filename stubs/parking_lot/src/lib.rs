//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this tiny API-compatible subset backed by
//! `std::sync`. Semantics match `parking_lot` where the workspace relies
//! on them: locks are not poisoned (a panic while holding a guard leaves
//! the lock usable) and guards are returned directly rather than inside
//! `Result`.

use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*lock.read(), 0);
    }
}
