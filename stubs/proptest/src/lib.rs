//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this API-compatible subset: `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, ranges and tuples and `Vec`s of
//! strategies, `prop::collection::vec`, `any::<T>()`, `Just`, the
//! `proptest!`/`prop_oneof!`/`prop_assert*`/`prop_assume!` macros, and
//! `ProptestConfig`. Failing inputs are reported (via panic message) but
//! **not shrunk** — rerun with `PROPTEST_SEED` to reproduce a failure.

use rand::{Rng, RngCore, SeedableRng};
use std::rc::Rc;

/// Per-test configuration. Only the fields the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not count as a success.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw a fresh input and try again.
    Reject(String),
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG driving generation. Seeded from `PROPTEST_SEED` when set so
/// failures can be reproduced, otherwise from the test name (stable
/// across runs — this shim favours determinism over novelty).
pub struct TestRng(rand::StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100000001b3)
            }),
        };
        TestRng(rand::StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Value`. Object-safe core (`sample`)
/// plus sized combinators, so strategies can be boxed for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy (`Rc` rather than `Box` because
/// tests clone the result of `prop_oneof!`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Weighted union for `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed correctly")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, isize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategies from a regex subset, mirroring proptest's
/// `impl Strategy for &str`. Supported: literal chars, `[a-z0-9_]`
/// classes with ranges, `\PC` (any non-control char), `\d`, `\w`, and
/// the repetitions `{n}`, `{m,n}`, `?`, `*`, `+` (the latter two capped
/// at 8 repeats).
#[derive(Clone, Debug)]
enum RegexItem {
    Lit(char),
    Class(Vec<(char, char)>),
    AnyPrintable,
}

#[derive(Clone, Debug)]
struct RegexPart {
    item: RegexItem,
    min: usize,
    max: usize,
}

fn parse_string_pattern(pattern: &str) -> Vec<RegexPart> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    assert_eq!(
                        chars.next(),
                        Some('C'),
                        "string strategy {pattern:?}: only \\PC is supported after \\P"
                    );
                    RegexItem::AnyPrintable
                }
                Some('d') => RegexItem::Class(vec![('0', '9')]),
                Some('w') => RegexItem::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some(other) => RegexItem::Lit(other),
                None => panic!("string strategy {pattern:?}: trailing backslash"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("escape in class"),
                        Some(ch) => ch,
                        None => panic!("string strategy {pattern:?}: unterminated class"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some(']') => {
                                // Trailing `-` is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(ch) => ch,
                            None => panic!("string strategy {pattern:?}: unterminated class"),
                        };
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                RegexItem::Class(ranges)
            }
            other => RegexItem::Lit(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition bound"),
                        hi.trim().parse().expect("repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        parts.push(RegexPart { item, min, max });
    }
    parts
}

fn sample_regex_item(item: &RegexItem, rng: &mut TestRng) -> char {
    match item {
        RegexItem::Lit(c) => *c,
        RegexItem::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            unreachable!("class spans summed correctly")
        }
        RegexItem::AnyPrintable => loop {
            // Mostly ASCII printable, occasionally wider Unicode, never a
            // control character (the \PC contract).
            let c = if rng.gen_range(0..8u32) != 0 {
                char::from_u32(rng.gen_range(0x20..0x7fu32)).unwrap()
            } else {
                match char::from_u32(rng.gen_range(0xa0..0x2fa20u32)) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if !c.is_control() {
                return c;
            }
        },
    }
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let parts = parse_string_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let reps = rng.gen_range(part.min..=part.max);
            for _ in 0..reps {
                out.push(sample_regex_item(&part.item, rng));
            }
        }
        out
    }
}

/// A `Vec` of strategies samples each element (used for "one strategy
/// per table" patterns).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for integers and bool.
#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_cast {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_via_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specifications accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        Exact(usize),
        HalfOpen(usize, usize),
        Inclusive(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange::HalfOpen(r.start, r.end)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange::Inclusive(*r.start(), *r.end())
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::HalfOpen(lo, hi) => rng.gen_range(lo..hi),
                SizeRange::Inclusive(lo, hi) => rng.gen_range(lo..=hi),
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec`: a vector of `size` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
    pub use super::{TestCaseError, TestRng};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirror of proptest's `prelude::prop` module tree.
    pub mod prop {
        pub use super::super::collection;
        pub use super::super::strategy;
    }
}

/// Runs the body of one `proptest!`-defined test: draws inputs until
/// `config.cases` successes, panicking on the first failure.
pub fn run_proptest<F>(name: &str, config: ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    while successes < config.cases {
        match one_case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejects} rejects for {successes} successes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {successes} passing case(s): {msg}\n\
                     (this proptest shim does not shrink; set PROPTEST_SEED to reproduce)"
                );
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(stringify!($name), config, |rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => 0..1usize, 1 => 1..2usize];
        let mut rng = super::TestRng::for_test("union_weights");
        let ones = (0..10_000)
            .filter(|_| super::Strategy::sample(&s, &mut rng) == 1)
            .count();
        assert!((500..1500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = prop::collection::vec(0..10usize, 2..=5);
        let mut rng = super::TestRng::for_test("vec_sizes");
        for _ in 0..200 {
            let v = super::Strategy::sample(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works((a, b) in (0..100usize, 0..100usize)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100);
        }

        #[test]
        fn flat_map_and_just(pair in (0..10usize).prop_flat_map(|n| (Just(n), 0..n + 1))) {
            let (n, k) = pair;
            prop_assert!(k <= n);
        }
    }
}
