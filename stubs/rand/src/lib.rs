//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this tiny API-compatible subset. `StdRng` here is a
//! xoshiro256** generator seeded through splitmix64 — deterministic in
//! the seed, like the real `StdRng`, but the streams differ from
//! upstream `rand`, so workloads generated for a given seed are not
//! bit-identical to ones produced with crates.io `rand`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform sample of the full range of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (`rand`'s
/// `Standard` distribution, collapsed into a trait).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, bound)` via Lemire's
/// multiply-shift with a rejection loop for exactness.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound` ≤ 2^64.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, usize);
impl_sample_range_int!(i64, i32, isize);

/// Seedable generators, mirroring `rand::SeedableRng` where used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
