//! Cross-algorithm agreement: CoreCover vs. the naive Theorem 3.1
//! enumerator (an oracle for GMRs) and vs. MiniCon (which must never find
//! a *smaller* equivalent rewriting).

use viewplan::prelude::*;

#[test]
fn corecover_matches_naive_on_chain_workloads() {
    for seed in 0..10 {
        let w = generate(&WorkloadConfig::chain(12, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        let naive = naive_gmrs(&w.query, &w.views);
        // Same existence and same minimum size.
        assert_eq!(
            cc.rewritings().is_empty(),
            naive.is_empty(),
            "existence disagrees for seed {seed}"
        );
        if let (Some(a), Some(b)) = (cc.rewritings().first(), naive.first()) {
            assert_eq!(
                a.body.len(),
                b.body.len(),
                "GMR size disagrees, seed {seed}"
            );
        }
        // CoreCover's grouping collapses equivalent views, so the naive
        // count can only be ≥ CoreCover's.
        assert!(naive.len() >= cc.rewritings().len());
    }
}

#[test]
fn corecover_matches_naive_on_star_workloads() {
    for seed in 0..10 {
        let w = generate(&WorkloadConfig::star(12, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        let naive = naive_gmrs(&w.query, &w.views);
        assert_eq!(cc.rewritings().is_empty(), naive.is_empty());
        if let (Some(a), Some(b)) = (cc.rewritings().first(), naive.first()) {
            assert_eq!(a.body.len(), b.body.len());
        }
    }
}

#[test]
fn corecover_without_grouping_matches_naive_exactly() {
    // With grouping off, both algorithms search the same tuple space, so
    // the GMR *sets* must match up to variants.
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::chain(8, 0, seed));
        let config = CoreCoverConfig {
            group_equivalent_views: false,
            group_view_tuples: false,
            ..CoreCoverConfig::default()
        };
        let cc = CoreCover::new(&w.query, &w.views).with_config(config).run();
        let naive = naive_gmrs(&w.query, &w.views);
        assert_eq!(cc.rewritings().len(), naive.len(), "seed {seed}");
        for r in cc.rewritings() {
            assert!(
                naive.iter().any(|n| is_variant(n, r)),
                "naive misses {r} (seed {seed})"
            );
        }
    }
}

#[test]
fn minicon_never_beats_corecover_on_size() {
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::chain(10, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        let Some(gmr) = cc.rewritings().first() else {
            continue;
        };
        let mc = minicon_rewritings(&w.query, &w.views, true, 200);
        for r in &mc {
            assert!(
                r.body.len() >= gmr.body.len(),
                "MiniCon found a smaller rewriting {r} than the GMR {gmr} (seed {seed})"
            );
        }
    }
}

#[test]
fn every_corecover_rewriting_is_locally_minimal() {
    // GMRs are LMRs (§3.2: "a globally-minimal rewriting is also locally
    // minimal").
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::star(10, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        for r in cc.rewritings().iter().take(5) {
            assert!(
                is_locally_minimal(r, &w.query, &w.views),
                "GMR {r} is not an LMR (seed {seed})"
            );
        }
    }
}

#[test]
fn verify_mode_never_rejects() {
    // Theorem 4.1: covers are rewritings — the verification pass must be a
    // no-op on all workloads.
    for seed in 0..8 {
        for config in [
            WorkloadConfig::chain(15, 1, seed),
            WorkloadConfig::star(15, 1, seed),
        ] {
            let w = generate(&config);
            let cfg = CoreCoverConfig {
                verify_rewritings: true,
                ..CoreCoverConfig::default()
            };
            // Panics inside run() if any rewriting fails verification.
            let _ = CoreCover::new(&w.query, &w.views).with_config(cfg).run();
        }
    }
}
