//! End-to-end tests of the anytime-budget CLI surface: deadline and
//! fault-injection degradation (exit 0 plus an explicit incomplete
//! note), typed too-wide errors (exit 2 instead of the old assert
//! panic), flag validation, and the `soak` stress command.

use std::path::PathBuf;
use std::process::{Command, Output};

const PROBLEM: &str = "examples/problems/carlocpart.vp";

fn viewplan(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_viewplan"));
    cmd.args(args);
    // The fault hook must not leak in from the ambient environment.
    cmd.env_remove("VIEWPLAN_FAULT");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("failed to spawn viewplan")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Writes a throwaway problem file and returns its path.
fn write_problem(name: &str, contents: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("viewplan_budget_{name}_{}.vp", std::process::id()));
    std::fs::write(&path, contents).expect("cannot write temp problem");
    path
}

/// A 25-subgoal query whose only rewriting is too wide for the M2 DP —
/// the input that used to trip `assert!(n <= 24)` and abort.
fn wide_problem() -> PathBuf {
    let mut text = String::new();
    let body: Vec<String> = (0..25).map(|i| format!("p{i}(X{i})")).collect();
    text.push_str(&format!("q(X0) :- {}.\n", body.join(", ")));
    for i in 0..25 {
        text.push_str(&format!("v{i}(A) :- p{i}(A).\n"));
    }
    for i in 0..25 {
        text.push_str(&format!("p{i}(c).\n"));
    }
    write_problem("wide", &text)
}

#[test]
fn injected_deadline_fault_degrades_to_best_so_far_exit_zero() {
    let out = viewplan(
        &["rewrite", PROBLEM, "--node-budget", "100000"],
        &[("VIEWPLAN_FAULT", "deadline:1")],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("deadline_exceeded"),
        "missing incomplete note: {text}"
    );
    assert!(
        text.contains("rewriting(s)"),
        "no best-so-far output: {text}"
    );
}

#[test]
fn plan_with_injected_deadline_fault_does_not_panic() {
    let out = viewplan(
        &["plan", PROBLEM, "--model", "m2", "--node-budget", "100000"],
        &[("VIEWPLAN_FAULT", "deadline:1")],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("deadline_exceeded"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn timeout_flag_is_accepted_and_completes_on_easy_input() {
    let out = viewplan(&["rewrite", PROBLEM, "--timeout-ms", "60000"], &[]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    // A generous deadline on a tiny problem should not truncate.
    assert!(!stdout(&out).contains("budget exhausted"));
}

#[test]
fn too_wide_m2_input_is_a_clean_input_error() {
    let path = wide_problem();
    let out = viewplan(&["plan", path.to_str().unwrap(), "--model", "m2"], &[]);
    assert_eq!(out.status.code(), Some(2), "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("25 subgoals"),
        "stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_budget_flag_values_are_input_errors() {
    for bad in [
        &["rewrite", PROBLEM, "--timeout-ms", "0"][..],
        &["rewrite", PROBLEM, "--timeout-ms", "soon"],
        &["rewrite", PROBLEM, "--node-budget", "-5"],
        &["soak", "--queries", "none"],
    ] {
        let out = viewplan(bad, &[]);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}: {}", stderr(&out));
    }
}

#[test]
fn bad_fault_spec_is_an_input_error() {
    let out = viewplan(&["rewrite", PROBLEM], &[("VIEWPLAN_FAULT", "gremlin")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("VIEWPLAN_FAULT"));
}

#[test]
fn soak_under_tight_budget_exits_cleanly() {
    for threads in ["1", "8"] {
        let out = viewplan(
            &[
                "soak",
                "--queries",
                "6",
                "--timeout-ms",
                "50",
                "--threads",
                threads,
            ],
            &[],
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "threads {threads}: {}",
            stderr(&out)
        );
        let text = stdout(&out);
        assert!(text.contains("6 queries"), "stdout: {text}");
        assert!(text.contains("verified equivalent"), "stdout: {text}");
    }
}

#[test]
fn soak_with_injected_cover_fault_still_verifies() {
    let out = viewplan(
        &["soak", "--queries", "3", "--node-budget", "5000"],
        &[("VIEWPLAN_FAULT", "cover:1")],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("verified equivalent"),
        "stdout: {}",
        stdout(&out)
    );
}
