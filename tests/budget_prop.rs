//! Property tests of the anytime-budget guarantees: under an
//! aggressively tight node budget, random workloads never panic, always
//! return a well-formed result with an honest [`Completeness`] marker,
//! produce *identical* results at every thread count (node caps are
//! per-search, so worker scheduling cannot change outcomes), and every
//! rewriting they do return still verifies as equivalent to the query.
//!
//! Ordering matters inside a case: all budgeted runs happen before any
//! unbudgeted work. Complete containment verdicts are cached
//! process-globally, and an unbudgeted run in between would warm the
//! cache with verdicts a budget-truncated search could not reproduce.

use proptest::prelude::*;
use viewplan::core::Rewriting;
use viewplan::obs::{BudgetSpec, Completeness};
use viewplan::prelude::*;

fn workload(seed: u64) -> Workload {
    let config = match seed % 3 {
        0 => WorkloadConfig::star(8, 1, seed),
        1 => WorkloadConfig::chain(8, 1, seed),
        _ => WorkloadConfig::random(8, 1, seed),
    };
    generate(&config)
}

/// One CoreCover* run under a per-search node cap of `cap`.
fn run_budgeted(w: &Workload, cap: u64, threads: usize) -> (Vec<Rewriting>, Completeness) {
    let _g = viewplan::obs::budget::install(BudgetSpec::new().node_budget(cap).build());
    let result = CoreCover::new(&w.query, &w.views)
        .with_config(CoreCoverConfig {
            threads,
            ..CoreCoverConfig::default()
        })
        .try_run_all_minimal()
        .expect("generated workloads stay within 64 subgoals");
    (result.rewritings().to_vec(), result.stats.completeness)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tight_node_budgets_degrade_honestly_and_deterministically(
        seed in 0u64..500,
        cap in 1u64..40,
    ) {
        let w = workload(seed);

        // Budgeted runs first (see module docs): node-capped results must
        // be identical at every thread count.
        let (rewritings, completeness) = run_budgeted(&w, cap, 1);
        for threads in [2usize, 4] {
            let (r, c) = run_budgeted(&w, cap, threads);
            prop_assert_eq!(&r, &rewritings, "cap {} not deterministic at {} threads", cap, threads);
            prop_assert_eq!(c, completeness);
        }

        // A run that claims completeness must match the unbudgeted run
        // exactly — "complete" is a promise, not a guess.
        let full = CoreCover::new(&w.query, &w.views)
            .try_run_all_minimal()
            .expect("generated workloads stay within 64 subgoals");
        if completeness == Completeness::Complete {
            prop_assert_eq!(&rewritings, &full.rewritings().to_vec());
        }

        // Whatever survived the budget must still be a real rewriting.
        for r in &rewritings {
            let exp = expand(r, &w.views).expect("rewritings only use known views");
            prop_assert!(
                are_equivalent(&exp, &w.query),
                "budget-truncated run returned a non-equivalent rewriting: {}", r
            );
        }
    }
}
