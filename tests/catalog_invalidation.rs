//! Property test of the live catalog's cache invalidation: after *any*
//! sequence of `add-view` / `drop-view` / query operations, every entry
//! still resident in the rewriting cache must render byte-identical to a
//! cold recompute under the catalog's current view set — i.e. the
//! epoch-tagged retargeting kept exactly the entries it was allowed to
//! keep, at every worker thread count.

use proptest::prelude::*;
use proptest::TestCaseError;
use viewplan::prelude::*;
use viewplan::serve::{BatchServer, LiveCatalog, ServeConfig};

/// Views the DDL ops may add and drop (the base set stays put). All
/// bodies agree on a/2, b/2, c/2, so any add passes the VP001 gate.
const CANDIDATES: [&str; 4] = [
    "w1(A, B) :- a(A, B), a(B, B)",
    "w2(C, D) :- a(C, E), b(C, D)",
    "w3(A, B) :- b(A, B)",
    "w4(A, B) :- a(A, B), c(B, B)",
];

const QUERIES: [&str; 5] = [
    "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)",
    "q(X) :- a(X, X)",
    "q(X, Y) :- b(X, Y)",
    "q(X, Y) :- a(X, Y), c(Y, Y)",
    "q(X) :- zzz(X, X)",
];

fn config(threads: usize) -> ServeConfig {
    ServeConfig {
        corecover: CoreCoverConfig {
            threads,
            ..CoreCoverConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Replays `ops` against a fresh catalog, then checks the oracle: warm
/// answers (and every resident cache entry) agree byte-for-byte with an
/// uncached server built from the catalog's final view set.
fn check_sequence(ops: &[(u32, u32)], threads: usize) -> Result<(), TestCaseError> {
    let base = parse_views("v0(A, B) :- a(A, B).").unwrap();
    let catalog = LiveCatalog::new(&base, config(threads));
    for &(kind, idx) in ops {
        match kind % 3 {
            0 => {
                let src = CANDIDATES[idx as usize % CANDIDATES.len()];
                // Duplicate adds are rejected without swapping: a no-op.
                let _ = catalog.add_view(View {
                    definition: parse_query(src).unwrap(),
                });
            }
            1 => {
                let name = format!("w{}", idx as usize % CANDIDATES.len() + 1);
                // Unknown drops are rejected without swapping: a no-op.
                let _ = catalog.drop_view(Symbol::new(&name));
            }
            _ => {
                let q = parse_query(QUERIES[idx as usize % QUERIES.len()]).unwrap();
                catalog.server().serve(&q).unwrap();
            }
        }
    }

    let server = catalog.server();
    let cold = BatchServer::with_config(
        server.views(),
        ServeConfig {
            cache_capacity: 0,
            ..config(threads)
        },
    );
    for src in QUERIES {
        let q = parse_query(src).unwrap();
        let warm = server.serve(&q).unwrap();
        let fresh = cold.serve(&q).unwrap();
        prop_assert_eq!(
            warm.render(),
            fresh.render(),
            "{} at {} threads",
            q,
            threads
        );
    }
    for (canonical, epoch, _) in server.cache().unwrap().entries() {
        prop_assert_eq!(epoch, server.epoch(), "stale-epoch resident {}", canonical);
        let warm = server.serve(&canonical).unwrap();
        let fresh = cold.serve(&canonical).unwrap();
        prop_assert_eq!(
            warm.render(),
            fresh.render(),
            "resident {} diverged from cold recompute at {} threads",
            canonical,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn residents_always_match_cold_recompute(
        ops in proptest::collection::vec((0u32..3, 0u32..20), 1..12),
    ) {
        for threads in [1usize, 8] {
            check_sequence(&ops, threads)?;
        }
    }
}
