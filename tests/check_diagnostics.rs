//! Integration tests for `viewplan check`: each diagnostic code VP001–
//! VP007 is triggered from a real `.vp` file through the real binary,
//! asserting the code, a `file:line:column` anchor, and the exit-code
//! contract (errors → 2, warnings → 0), plus the fail-fast gate on the
//! processing commands.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Writes `contents` to a scratch `.vp` file and runs
/// `viewplan check <file> [extra...]` on it.
fn run_check(tag: &str, contents: &str, extra: &[&str]) -> (Output, PathBuf) {
    let path = std::env::temp_dir().join(format!("viewplan-check-{tag}-{}.vp", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .arg("check")
        .arg(&path)
        .args(extra)
        .env("NO_COLOR", "1")
        .output()
        .expect("spawn viewplan");
    (out, path)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn vp001_arity_mismatch_is_an_error_with_span_and_exit_2() {
    let (out, path) = run_check("vp001", "q(X) :- e(X, Y).\nv(A) :- e(A, A, A).\n", &[]);
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    assert!(text.contains("error[VP001]"), "{text}");
    // The mismatching use is the 3-ary e on line 2, column 9.
    assert!(text.contains(":2:9"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp002_head_anomalies_warn_and_exit_0() {
    let (out, path) = run_check("vp002", "q(X, X, c) :- e(X, Y).\nv(A) :- e(A, B).\n", &[]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP002]"), "{text}");
    assert!(text.contains(":1:"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp003_disconnected_body_warns() {
    let (out, path) = run_check(
        "vp003",
        "q(X, Y) :- e(X, X), f(Y, Y).\nv(A, B) :- e(A, B).\nw(A, B) :- f(A, B).\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP003]"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp004_duplicate_subgoal_warns_with_span() {
    let (out, path) = run_check(
        "vp004",
        "q(X) :- e(X, Y), e(X, Y).\nv(A) :- e(A, B).\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP004]"), "{text}");
    // The duplicate is the second e(X, Y), at column 18.
    assert!(text.contains(":1:18"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp005_uncovered_predicate_warns() {
    let (out, path) = run_check(
        "vp005",
        "q(X) :- e(X, Y), p(Y).\nv(A, B) :- e(A, B).\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP005]"), "{text}");
    assert!(text.contains("p/1"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp006_foreign_predicate_view_warns() {
    let (out, path) = run_check(
        "vp006",
        "q(X) :- e(X, Y).\nv(A) :- e(A, B).\nw(A) :- f(A, A).\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP006]"), "{text}");
    assert!(text.contains("f/2"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn vp007_blowup_warns_past_the_subgoal_cap() {
    let body: Vec<String> = (0..65).map(|i| format!("p{i}(X{i})")).collect();
    let head: Vec<String> = (0..65).map(|i| format!("X{i}")).collect();
    let views: Vec<String> = (0..65).map(|i| format!("v{i}(A) :- p{i}(A).")).collect();
    let src = format!(
        "q({}) :- {}.\n{}\n",
        head.join(", "),
        body.join(", "),
        views.join("\n")
    );
    let (out, path) = run_check("vp007", &src, &[]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("warning[VP007]"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn clean_program_reports_no_diagnostics() {
    let (out, path) = run_check(
        "clean",
        "q(X, Y) :- e(X, Z), f(Z, Y).\nve(A, B) :- e(A, B).\nvf(A, B) :- f(A, B).\n",
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(
        text.contains("0 errors, 0 warnings"),
        "expected a clean summary, got: {text}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_json_carries_code_severity_and_position() {
    let (out, path) = run_check(
        "json",
        "q(X) :- e(X, Y).\nv(A) :- e(A, A, A).\n",
        &["--json"],
    );
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    for needle in [
        "\"code\": \"VP001\"",
        "\"severity\": \"error\"",
        "\"line\": 2",
        "\"column\": 9",
        "\"errors\": 1",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn processing_commands_refuse_programs_with_errors() {
    let path = std::env::temp_dir().join(format!("viewplan-gate-{}.vp", std::process::id()));
    std::fs::write(&path, "q(X) :- e(X, Y).\nv(A) :- e(A, A, A).\n").expect("write fixture");
    for cmd in ["rewrite", "plan"] {
        let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
            .arg(cmd)
            .arg(&path)
            .output()
            .expect("spawn viewplan");
        assert_eq!(out.status.code(), Some(2), "{cmd} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("[VP001]"), "{cmd} stderr: {err}");
        assert!(err.contains(":2:9"), "{cmd} stderr lacks line:col: {err}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn warnings_do_not_block_processing_commands() {
    // unanswerable.vp carries a deliberate VP005 warning; rewrite must
    // still run (and report no rewriting) with exit 0.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .current_dir(root)
        .args(["rewrite", "tests/golden/unanswerable.vp"])
        .output()
        .expect("spawn viewplan");
    assert_eq!(out.status.code(), Some(0));
}
