//! End-to-end tests of the `viewplan` binary against the bundled example
//! problems: exit codes, answer agreement, and the `--stats` /
//! `--stats-json` reporters.

use std::path::Path;
use std::process::{Command, Output};

const PROBLEM: &str = "examples/problems/carlocpart.vp";

fn viewplan(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .args(args)
        .output()
        .expect("failed to spawn viewplan")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn rewrite_succeeds_on_example_problem() {
    let out = viewplan(&["rewrite", PROBLEM]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("v4"), "stdout: {}", stdout(&out));
}

#[test]
fn plan_succeeds_for_each_cost_model() {
    for model in ["m1", "m2", "m3"] {
        let out = viewplan(&["plan", PROBLEM, "--model", model]);
        assert!(
            out.status.success(),
            "model {model} failed, stderr: {}",
            stderr(&out)
        );
        assert!(stdout(&out).contains("best rewriting"));
    }
}

#[test]
fn eval_answers_agree() {
    let out = viewplan(&["eval", PROBLEM]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("answers agree"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn missing_file_fails_with_exit_code_2() {
    let out = viewplan(&["plan", "examples/problems/no_such_problem.vp"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = viewplan(&["frobnicate", PROBLEM]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));
}

/// Writes a throwaway problem file and returns its path.
fn temp_problem(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn malformed_fact_fails_with_exit_code_2() {
    let path = temp_problem(
        "viewplan_cli_bad_fact.vp",
        "q(X) :- e(X, Y).\nv(A, B) :- e(A, B).\ncar(honda, .\n",
    );
    let out = viewplan(&["rewrite", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("bad fact"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn non_ground_fact_fails_with_exit_code_2() {
    let path = temp_problem(
        "viewplan_cli_nonground.vp",
        "q(X) :- e(X, Y).\nv(A, B) :- e(A, B).\ncar(Honda, anderson).\n",
    );
    let out = viewplan(&["eval", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("must be ground"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_file_fails_with_exit_code_2() {
    let path = temp_problem("viewplan_cli_no_rules.vp", "% nothing but comments\n");
    let out = viewplan(&["rewrite", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no rules"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_model_and_baseline_fail_with_exit_code_2() {
    let out = viewplan(&["plan", PROBLEM, "--model", "m9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown cost model"));
    let out = viewplan(&["rewrite", PROBLEM, "--baseline", "quantum"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown baseline"));
}

#[test]
fn bad_threads_value_fails_with_exit_code_2() {
    for bad in ["0", "many", "-3"] {
        let out = viewplan(&["rewrite", PROBLEM, "--threads", bad]);
        assert_eq!(out.status.code(), Some(2), "--threads {bad}");
        assert!(stderr(&out).contains("--threads"));
    }
}

#[test]
fn too_wide_query_fails_with_exit_code_2() {
    let body: Vec<String> = (0..65).map(|i| format!("p{i}(X{i})")).collect();
    let head: Vec<String> = (0..65).map(|i| format!("X{i}")).collect();
    let mut contents = format!("q({}) :- {}.\n", head.join(", "), body.join(", "));
    contents.push_str("v0(A) :- p0(A).\n");
    let path = temp_problem("viewplan_cli_wide.vp", &contents);
    let out = viewplan(&["rewrite", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("65 subgoals"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn threads_flag_gives_identical_rewrite_output() {
    let serial = viewplan(&["rewrite", PROBLEM, "--threads", "1"]);
    assert!(serial.status.success(), "stderr: {}", stderr(&serial));
    for n in ["2", "8"] {
        let par = viewplan(&["rewrite", PROBLEM, "--threads", n]);
        assert!(par.status.success(), "stderr: {}", stderr(&par));
        assert_eq!(stdout(&par), stdout(&serial), "--threads {n}");
    }
}

#[test]
fn stats_prints_phase_tree_to_stderr() {
    let out = viewplan(&["plan", PROBLEM, "--stats"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    // The report must show the nested phase tree spanning all layers:
    // CoreCover and its sub-phases, containment, optimizer enumeration,
    // and plan execution, plus the counter section.
    for needle in [
        "phases",
        "corecover.run",
        "corecover.tuple_cores",
        "corecover.set_cover",
        "containment.minimize",
        "optimizer.enumerate",
        "engine.execute_plan",
        // `containment.checks` registers on both containment routes;
        // `hom_nodes`/`acyclic_fast_path` each exist on only one side
        // of the VIEWPLAN_ACYCLIC matrix.
        "containment.checks",
        "cost.plans_enumerated",
    ] {
        assert!(err.contains(needle), "missing {needle:?} in:\n{err}");
    }
    // Without --stats the report must not appear.
    let quiet = viewplan(&["plan", PROBLEM]);
    assert!(quiet.status.success());
    assert!(!stderr(&quiet).contains("phases"));
}

#[test]
fn stats_json_writes_parseable_report() {
    let path = std::env::temp_dir().join("viewplan_cli_stats.json");
    let path_str = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);

    let out = viewplan(&["plan", PROBLEM, "--stats-json", path_str]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(Path::new(path_str).exists());

    let text = std::fs::read_to_string(&path).unwrap();
    let json = viewplan::obs::parse_json(&text).expect("report must be valid JSON");
    let counters = json.get("counters").expect("report must have counters");
    for key in [
        "corecover.runs",
        "corecover.view_tuples",
        "containment.checks",
        "cost.oracle_calls",
        "engine.joins",
    ] {
        let value = counters
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("missing counter {key:?} in report"));
        assert!(value > 0, "counter {key:?} should be nonzero");
    }
    assert!(json.get("spans").is_some(), "report must have spans");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_flag_renders_a_span_tree_on_stderr() {
    let out = viewplan(&["rewrite", PROBLEM, "--trace"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("trace:"), "missing trace header in:\n{err}");
    assert!(
        err.contains("corecover.run"),
        "missing root span in:\n{err}"
    );
    // stdout stays byte-identical to the untraced run.
    let quiet = viewplan(&["rewrite", PROBLEM]);
    assert_eq!(stdout(&out), stdout(&quiet));
}

#[test]
fn trace_json_output_parses_and_round_trips() {
    let path = std::env::temp_dir().join("viewplan_cli_trace.json");
    let path_str = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);

    let out = viewplan(&["rewrite", PROBLEM, "--trace-json", path_str]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let text = std::fs::read_to_string(&path).unwrap();
    let json = viewplan::obs::parse_json(&text).expect("trace must be valid JSON");
    let events = json.as_array().expect("chrome trace is a JSON array");
    assert!(!events.is_empty());
    // Begin/End phases balance, and every event carries pid/tid/ts.
    let mut depth = 0i64;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        match ph {
            "B" => depth += 1,
            "E" => depth -= 1,
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(depth >= 0, "E before matching B");
        for key in ["pid", "tid", "ts"] {
            assert!(e.get(key).is_some(), "event missing {key:?}");
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E events");
    // Round-trip: rendering the parsed document and re-parsing it is
    // lossless (the CLI emits the same subset `obs::Json` models).
    let reparsed = viewplan::obs::parse_json(&json.render()).unwrap();
    assert_eq!(reparsed, json);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_out_writes_prometheus_exposition() {
    let path = std::env::temp_dir().join("viewplan_cli_metrics.prom");
    let path_str = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);

    // Eight workers on purpose: single-flight coalescing guarantees that
    // concurrent duplicates elect one computing leader and the rest share
    // its answer as hits (the interleaving-model suite pins
    // hits + misses == lookups across every schedule), so the exposition
    // always carries both lookup counters.
    let out = viewplan(&[
        "batch",
        "--workload",
        "star",
        "--queries",
        "3",
        "--repeat",
        "2",
        "--threads",
        "8",
        "--metrics-out",
        path_str,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("# TYPE viewplan_serve_requests_total counter"));
    assert!(text.contains("viewplan_serve_cache_hits_total"));
    assert!(
        text.contains("viewplan_serve_request_latency_us_bucket"),
        "latency histogram missing in:\n{text}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn explain_needs_facts_for_m2_and_defaults_to_m1_without() {
    let out = viewplan(&["explain", "tests/golden/example_3_1_lmr_chain.vp"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("model: m1"));

    let out = viewplan(&[
        "explain",
        "tests/golden/example_3_1_lmr_chain.vp",
        "--model",
        "m2",
    ]);
    assert_eq!(out.status.code(), Some(2), "m2 without facts must exit 2");
}
