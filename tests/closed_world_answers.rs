//! The closed-world guarantee, end to end: for generated workloads and
//! random databases, every rewriting CoreCover produces computes exactly
//! the query's answer when evaluated over the materialized views.
//!
//! This is the semantic soundness test of the whole system — it exercises
//! the workload generator, the engine (materialization + evaluation), the
//! rewriting generator, and the planner together.

use viewplan::prelude::*;

fn load(rels: Vec<(Symbol, Vec<Vec<i64>>)>) -> Database {
    let mut db = Database::new();
    for (name, rows) in rels {
        for row in rows {
            db.insert(name, row.into_iter().map(Value::Int).collect());
        }
    }
    db
}

// Database sizing note: a chain join grows by a factor of roughly
// rows/domain per step, so rows must stay below the domain or an
// 8-subgoal all-distinguished query materializes up to domain^9 bindings.
fn check_workload(config: &WorkloadConfig, rows: usize, domain: i64) {
    let w = generate(config);
    let result = CoreCover::new(&w.query, &w.views).run();
    if result.rewritings().is_empty() {
        return; // the paper ignores queries without rewritings
    }
    let base = load(random_database(
        &w.query,
        rows,
        domain,
        config.seed ^ 0xbeef,
    ));
    let direct = evaluate(&w.query, &base);
    let vdb = materialize_views(&w.views, &base);
    for r in result.rewritings().iter().take(5) {
        let via = evaluate(r, &vdb);
        assert_eq!(
            direct, via,
            "rewriting {r} disagrees with the query for seed {}",
            config.seed
        );
    }
}

#[test]
fn star_rewritings_preserve_answers() {
    for seed in 0..8 {
        check_workload(&WorkloadConfig::star(25, 0, seed), 20, 25);
    }
}

#[test]
fn star_rewritings_preserve_answers_nondistinguished() {
    for seed in 0..8 {
        check_workload(&WorkloadConfig::star(25, 1, seed), 20, 25);
    }
}

#[test]
fn chain_rewritings_preserve_answers() {
    for seed in 0..8 {
        check_workload(&WorkloadConfig::chain(25, 0, seed), 30, 40);
    }
}

#[test]
fn chain_rewritings_preserve_answers_nondistinguished() {
    for seed in 0..8 {
        check_workload(&WorkloadConfig::chain(25, 1, seed), 30, 40);
    }
}

#[test]
fn random_shape_rewritings_preserve_answers() {
    for seed in 0..8 {
        check_workload(&WorkloadConfig::random(25, 0, seed), 20, 30);
    }
}

#[test]
fn all_minimal_rewritings_preserve_answers() {
    // CoreCover* (the M2 space) must also be answer-preserving.
    for seed in 0..4 {
        let config = WorkloadConfig::chain(15, 0, seed);
        let w = generate(&config);
        let result = CoreCover::new(&w.query, &w.views).run_all_minimal();
        if result.rewritings().is_empty() {
            continue;
        }
        let base = load(random_database(&w.query, 30, 40, seed ^ 0xfeed));
        let direct = evaluate(&w.query, &base);
        let vdb = materialize_views(&w.views, &base);
        for r in result.rewritings().iter().take(10) {
            assert_eq!(direct, evaluate(r, &vdb), "CoreCover* rewriting {r}");
        }
    }
}

#[test]
fn planned_m3_execution_preserves_answers() {
    // Execute the best M3 plan (with smart drops) and compare against
    // direct evaluation — renaming-based drops must never change answers.
    for seed in 0..4 {
        let config = WorkloadConfig::chain(15, 1, seed);
        let w = generate(&config);
        let result = CoreCover::new(&w.query, &w.views).run();
        let Some(r) = result.rewritings().first() else {
            continue;
        };
        if r.body.len() > 5 {
            continue; // keep permutation search snappy
        }
        let base = load(random_database(&w.query, 30, 40, seed ^ 0xabcd));
        let vdb = materialize_views(&w.views, &base);
        let mut oracle = ExactOracle::new(&vdb);
        let Some((plan, _)) = optimal_m3_plan(
            &w.query,
            &w.views,
            r,
            DropPolicy::SmartCostBased,
            &mut oracle,
        ) else {
            continue;
        };
        let direct = evaluate(&w.query, &base);
        let trace = plan.try_execute(&r.head, &vdb).unwrap();
        assert_eq!(direct, trace.answer, "M3 plan {plan} for {r}");
    }
}

#[test]
fn minicon_equivalent_rewritings_preserve_answers() {
    for seed in 0..4 {
        let config = WorkloadConfig::chain(10, 0, seed);
        let w = generate(&config);
        let rs = minicon_rewritings(&w.query, &w.views, true, 50);
        if rs.is_empty() {
            continue;
        }
        let base = load(random_database(&w.query, 30, 40, seed ^ 0x1234));
        let direct = evaluate(&w.query, &base);
        let vdb = materialize_views(&w.views, &base);
        for r in rs.iter().take(5) {
            assert_eq!(direct, evaluate(r, &vdb), "MiniCon rewriting {r}");
        }
    }
}
