//! §5.3: cost model M2 is *containment monotonic* — if there is a
//! containment mapping from rewriting P1 onto P2 whose image covers all of
//! P2's subgoals, then P2's optimal plan is at most as costly as P1's.
//! Theorem 5.1 generalizes to any cost model with this property; here we
//! validate it empirically for M2 (and for M3's supplementary variant,
//! whose GSRs are projections of the same intermediates).

use viewplan::containment::homomorphism::HomomorphismSearch;
use viewplan::cost::{optimal_m2_order, ExactOracle};
use viewplan::prelude::*;

/// True iff there is a containment mapping from `p1` to `p2` whose image
/// includes every subgoal of `p2` (the premise of §5.3).
fn onto_containment(p1: &ConjunctiveQuery, p2: &ConjunctiveQuery) -> bool {
    let Some(initial) = viewplan::containment::head_bindings(p1, p2) else {
        return false;
    };
    let mut found = false;
    HomomorphismSearch::with_initial(&p1.body, &p2.body, initial).for_each(|phi| {
        let image: std::collections::HashSet<Atom> = p1.body.iter().map(|a| a.apply(phi)).collect();
        if p2.body.iter().all(|a| image.contains(a)) {
            found = true;
            true
        } else {
            false
        }
    });
    found
}

/// The paper's own instance: P2 vs P1 in the car-loc-part example
/// ("plan P2 … is at least as efficient as plan P1, since there is a
/// containment mapping from P1 to P2 such that all the subgoals of P2 are
/// images under the mapping").
#[test]
fn carlocpart_p2_dominates_p1_under_m2() {
    let p1 = parse_query("q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)").unwrap();
    let p2 = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)").unwrap();
    assert!(onto_containment(&p1, &p2));
    assert!(!onto_containment(&p2, &p1));

    let views = parse_views(
        "v1(M, D, C) :- car(M, D), loc(D, C).\n\
         v2(S, M, C) :- part(S, M, C).",
    )
    .unwrap();
    for seed in 0..5 {
        let mut base = Database::new();
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        for (name, rows) in random_database(&q, 30, 12, seed) {
            for mut row in rows {
                // Give dealer `a` a presence so the views are nonempty.
                if name.as_str() == "car" && row[1] % 3 == 0 {
                    base.insert(name, vec![Value::Int(row[0]), Value::sym("a")]);
                } else if name.as_str() == "loc" && row[0] % 3 == 0 {
                    base.insert(name, vec![Value::sym("a"), Value::Int(row[1])]);
                } else {
                    base.insert(name, row.drain(..).map(Value::Int).collect());
                }
            }
        }
        let vdb = materialize_views(&views, &base);
        let mut oracle = ExactOracle::new(&vdb);
        let Some((_, _, cost2)) = optimal_m2_order(&p2.body, &mut oracle) else {
            continue;
        };
        let Some((_, _, cost1)) = optimal_m2_order(&p1.body, &mut oracle) else {
            continue;
        };
        assert!(
            cost2 <= cost1,
            "M2 monotonicity violated (seed {seed}): cost(P2)={cost2} > cost(P1)={cost1}"
        );
    }
}

/// Randomized check over generated chain workloads: take any rewriting P
/// and inflate it with a renamed duplicate subgoal (which always yields an
/// onto-containment from the inflated version); the optimal M2 cost must
/// not improve.
#[test]
fn inflated_rewritings_never_cost_less_under_m2() {
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::chain(15, 0, seed));
        let result = CoreCover::new(&w.query, &w.views).run();
        let Some(p) = result.rewritings().first() else {
            continue;
        };
        if p.body.len() < 2 {
            continue;
        }
        // Inflate: duplicate the first subgoal with fresh variables in
        // non-head positions that are not shared elsewhere.
        let mut inflated = p.clone();
        let mut dup = p.body[0].clone();
        let head_vars: std::collections::HashSet<Symbol> = p.head.variables().collect();
        let shared: std::collections::HashSet<Symbol> =
            p.body[1..].iter().flat_map(|a| a.variables()).collect();
        let mut subst = Substitution::new();
        for v in dup.variables().collect::<Vec<_>>() {
            if !head_vars.contains(&v) && !shared.contains(&v) {
                subst.bind(v, Term::Var(Symbol::fresh(&v.as_str())));
            }
        }
        dup = dup.apply(&subst);
        if dup == p.body[0] {
            continue; // nothing to rename: duplicate would be identical
        }
        inflated.body.push(dup);
        assert!(onto_containment(&inflated, p), "seed {seed}");

        let mut base = Database::new();
        for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x99) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let vdb = materialize_views(&w.views, &base);
        let mut oracle = ExactOracle::new(&vdb);
        let (_, _, cost_p) = optimal_m2_order(&p.body, &mut oracle).unwrap();
        let (_, _, cost_inflated) = optimal_m2_order(&inflated.body, &mut oracle).unwrap();
        assert!(
            cost_p <= cost_inflated,
            "seed {seed}: {cost_p} > {cost_inflated}"
        );
    }
}
