//! Differential testing of the acyclic semijoin fast path against the
//! homomorphism DFS — the containment half of the acyclicity tentpole:
//! for every query pair, the semijoin verdict and the search verdict
//! must be the **same boolean**, whether checks run on one thread or
//! eight, with or without node budgets.
//!
//! Routing is also pinned down: acyclic patterns (star, chain) provably
//! take the fast path and cyclic ones (triangles) provably fall back to
//! the DFS, asserted through the `containment.acyclic_fast_path` /
//! `containment.acyclic_fallback` counters.
//!
//! Every generated body stays at or under 5 subgoals, so no pair here
//! reaches the containment memo cache's `MIN_CACHED_SUBGOALS`
//! threshold — each `is_contained_in` call below really runs its route,
//! rather than replaying a verdict the *other* route cached.

use proptest::prelude::*;
use viewplan::obs::BudgetSpec;
use viewplan::prelude::*;

/// Runs `is_contained_in(q1, q2)` under each route (thread-local switch)
/// and asserts the verdicts agree. Returns the shared verdict.
fn both_routes(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    let fast = {
        let _g = install_acyclic(true);
        is_contained_in(q1, q2)
    };
    let slow = {
        let _g = install_acyclic(false);
        is_contained_in(q1, q2)
    };
    assert_eq!(
        fast, slow,
        "semijoin fast path diverged from homomorphism search on\n  q1 = {q1}\n  q2 = {q2}"
    );
    fast
}

// ---------------------------------------------------------------------
// Generators. Containment pairs share the head predicate and arity, so
// the verdict depends on the bodies rather than failing trivially at
// the head.

/// A star: spokes `r{p}(H, S_i)` around one hub, head exposing the hub.
/// Acyclic for any spoke count — every spoke edge shares only `H` with
/// the rest, so GYO removes them one by one.
fn arb_star() -> impl Strategy<Value = ConjunctiveQuery> {
    prop::collection::vec(0..3usize, 1..=4).prop_map(|preds| {
        let body: Vec<Atom> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Atom::new(
                    format!("r{p}").as_str(),
                    vec![Term::var("H"), Term::var(&format!("S{i}"))],
                )
            })
            .collect();
        ConjunctiveQuery::new(Atom::new("q", vec![Term::var("H")]), body)
    })
}

/// A chain: `e{p_i}(X_i, X_{i+1})`, head pinning the chain's start.
fn arb_chain() -> impl Strategy<Value = ConjunctiveQuery> {
    prop::collection::vec(0..2usize, 1..=4).prop_map(|preds| {
        let body: Vec<Atom> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Atom::new(
                    format!("e{p}").as_str(),
                    vec![
                        Term::var(&format!("X{i}")),
                        Term::var(&format!("X{}", i + 1)),
                    ],
                )
            })
            .collect();
        ConjunctiveQuery::new(Atom::new("q", vec![Term::var("X0")]), body)
    })
}

/// A Boolean triangle `q() :- a(X,Y), b(Y,Z), c(Z,X)`: with no head pin
/// to break the cycle, the pattern is cyclic and must take the DFS.
fn arb_triangle() -> impl Strategy<Value = ConjunctiveQuery> {
    prop::collection::vec(0..2usize, 3).prop_map(|preds| {
        let vars = ["X", "Y", "Z"];
        let body: Vec<Atom> = (0..3)
            .map(|i| {
                Atom::new(
                    format!("e{}", preds[i]).as_str(),
                    vec![Term::var(vars[i]), Term::var(vars[(i + 1) % 3])],
                )
            })
            .collect();
        ConjunctiveQuery::new(Atom::new("q", vec![]), body)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Star ⊑ star: true whenever every spoke predicate of the pattern
    /// also hangs off the target's hub, false otherwise — a healthy mix
    /// of both verdicts, all decided on the fast path.
    #[test]
    fn routes_agree_on_star_pairs(q1 in arb_star(), q2 in arb_star()) {
        both_routes(&q1, &q2);
        both_routes(&q2, &q1);
    }

    /// Chain ⊑ chain with the start pinned: the pattern chain must fold
    /// onto the target chain from its first node.
    #[test]
    fn routes_agree_on_chain_pairs(q1 in arb_chain(), q2 in arb_chain()) {
        both_routes(&q1, &q2);
        both_routes(&q2, &q1);
    }

    /// Triangles are cyclic: both directions route through the DFS
    /// fallback, and mixed star/triangle pairs route per-pattern. The
    /// verdicts still agree (the fallback *is* the DFS).
    #[test]
    fn routes_agree_on_triangle_pairs(q1 in arb_triangle(), q2 in arb_triangle()) {
        both_routes(&q1, &q2);
        both_routes(&q2, &q1);
    }

    /// The fast path is budget-immune: a 1-node budget that would gut
    /// the DFS cannot touch the semijoin verdict, which must still equal
    /// the *unbudgeted* ground truth.
    #[test]
    fn fast_path_verdicts_survive_node_budgets(q1 in arb_star(), q2 in arb_star()) {
        let truth = {
            let _g = install_acyclic(false);
            is_contained_in(&q1, &q2)
        };
        let starved = {
            let _budget = viewplan::obs::budget::install(BudgetSpec::new().node_budget(1).build());
            let _g = install_acyclic(true);
            is_contained_in(&q1, &q2)
        };
        prop_assert_eq!(starved, truth, "budget truncated a fast-path verdict");
    }
}

// ---------------------------------------------------------------------
// Routing proofs: the counters say which path ran.

/// Acyclic patterns bump `containment.acyclic_fast_path`; cyclic ones
/// bump `containment.acyclic_fallback`. Deltas use `>=` because the
/// proptests above share the process-global registry.
#[test]
fn counters_prove_routing() {
    viewplan::obs::set_enabled(true);
    let star1 = parse_query("q(H) :- r0(H, A), r1(H, B)").unwrap();
    let star2 = parse_query("q(H) :- r0(H, A)").unwrap();
    let tri1 = parse_query("q() :- e0(X, Y), e0(Y, Z), e0(Z, X)").unwrap();
    let tri2 = parse_query("q() :- e0(X, X)").unwrap();

    let _g = install_acyclic(true);
    let fast_before = viewplan::obs::counter_value("containment.acyclic_fast_path");
    assert!(both_routes(&star1, &star2));
    let fast_after = viewplan::obs::counter_value("containment.acyclic_fast_path");
    assert!(
        fast_after > fast_before,
        "acyclic star pattern did not take the fast path ({fast_before} -> {fast_after})"
    );

    // `is_contained_in(q1, q2)` routes on q2's body — the pattern being
    // mapped — so the triangle goes on the right. The self-loop folds
    // the triangle, so the verdict is true *through the fallback*.
    let fallback_before = viewplan::obs::counter_value("containment.acyclic_fallback");
    assert!(both_routes(&tri2, &tri1));
    let fallback_after = viewplan::obs::counter_value("containment.acyclic_fallback");
    assert!(
        fallback_after > fallback_before,
        "cyclic triangle pattern did not fall back ({fallback_before} -> {fallback_after})"
    );
}

// ---------------------------------------------------------------------
// Worker threads. Thread-local switch overrides do not propagate into
// spawned threads, so the multi-threaded run steers routing through the
// process-wide default — exactly how `VIEWPLAN_THREADS=8` serving
// workers see the switch.

/// A fixed corpus with known mixed verdicts, each checked both ways.
fn corpus() -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let pairs = [
        ("q(H) :- r0(H, A), r1(H, B)", "q(H) :- r0(H, A)"),
        ("q(H) :- r0(H, A)", "q(H) :- r1(H, A)"),
        ("q(X0) :- e0(X0, X1), e0(X1, X2)", "q(X0) :- e0(X0, X1)"),
        ("q(X0) :- e0(X0, X1)", "q(X0) :- e1(X0, X1)"),
        ("q() :- e0(X, Y), e0(Y, Z), e0(Z, X)", "q() :- e0(X, X)"),
        ("q() :- e0(X, X)", "q() :- e0(X, Y), e0(Y, Z), e0(Z, X)"),
        ("q(X, X) :- e0(X, X)", "q(A, B) :- e0(A, B)"),
    ];
    pairs
        .iter()
        .map(|(a, b)| (parse_query(a).unwrap(), parse_query(b).unwrap()))
        .collect()
}

#[test]
fn verdicts_agree_across_eight_worker_threads() {
    let pairs = corpus();
    // Ground truth: the DFS, serially, via the thread-local override.
    let truth: Vec<(bool, bool)> = pairs
        .iter()
        .map(|(a, b)| {
            let _g = install_acyclic(false);
            (is_contained_in(a, b), is_contained_in(b, a))
        })
        .collect();
    let restore = viewplan::cq::acyclic_default();
    for on in [true, false] {
        set_acyclic_default(on);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pairs = corpus();
                let truth = truth.clone();
                std::thread::spawn(move || {
                    for ((a, b), expected) in pairs.iter().zip(&truth) {
                        let got = (is_contained_in(a, b), is_contained_in(b, a));
                        assert_eq!(
                            got, *expected,
                            "default={on}: verdict diverged on {a} / {b}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    set_acyclic_default(restore);
}
