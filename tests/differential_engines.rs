//! Differential testing of the columnar batch engine against the row
//! engine — the PR's tentpole contract: for every query, database, thread
//! count, and budget, the two engines must produce *byte-identical*
//! results, including the answer's row order and the full
//! [`viewplan::engine::ExecutionTrace`] (subgoal/IR/GSR sizes).
//!
//! The Yannakakis engine joins the same contract: acyclic queries run
//! the semijoin full reduction before joining, cyclic ones fall back,
//! and either way every answer, trace, and served render below must be
//! byte-identical to the row and columnar engines.
//!
//! The second half holds regression tests for the three error-path
//! bugfixes that rode along:
//!
//! 1. an unsafe head query (head variable never bound by the body) is a
//!    typed [`EngineError::UnboundHeadVariable`], and exits the CLI
//!    with code 2 instead of panicking;
//! 2. a subgoal whose arity disagrees with the stored relation counts
//!    its skipped tuples in `engine.arity_mismatch_skips` instead of
//!    silently returning an empty join;
//! 3. re-registering a relation at a conflicting arity is a typed
//!    [`EngineError::ArityConflict`] from `Database::try_get_or_create`
//!    / `try_insert`, and a bad fact file exits the CLI with code 2.

use proptest::prelude::*;
use std::process::Command;
use viewplan::engine::install;
use viewplan::obs::BudgetSpec;
use viewplan::prelude::*;

/// Runs `f` under each engine and asserts the outputs are equal,
/// including row order where the output is a relation slice.
fn both_engines<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let row = {
        let _g = install(Engine::Row);
        f()
    };
    let columnar = {
        let _g = install(Engine::Columnar);
        f()
    };
    assert_eq!(row, columnar, "row and columnar engines diverged");
    columnar
}

/// [`both_engines`] plus the Yannakakis engine: all three must agree
/// byte-for-byte.
fn all_engines<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let baseline = both_engines(&f);
    let yannakakis = {
        let _g = install(Engine::Yannakakis);
        f()
    };
    assert_eq!(
        baseline, yannakakis,
        "yannakakis engine diverged from row/columnar"
    );
    yannakakis
}

// ---------------------------------------------------------------------
// Random queries and databases (same shape as the engine crate's
// nested-loop reference suite, but comparing the two engines).

fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let term = prop_oneof![
        5 => (0..4usize).prop_map(|i| Term::var(&format!("V{i}"))),
        1 => (0..3i64).prop_map(Term::int),
    ];
    let atom = ((0..3usize), prop::collection::vec(term, 1..=3))
        .prop_map(|(p, ts)| Atom::new(format!("rel{}_{}", p, ts.len()).as_str(), ts));
    prop::collection::vec(atom, 1..=4).prop_map(|body| {
        let mut vars: Vec<Symbol> = Vec::new();
        for a in &body {
            for v in a.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let head_terms: Vec<Term> = vars.into_iter().map(Term::Var).collect();
        ConjunctiveQuery::new(Atom::new("out", head_terms), body)
    })
}

fn arb_db(q: &ConjunctiveQuery) -> impl Strategy<Value = Database> {
    let preds: Vec<(Symbol, usize)> = {
        let mut seen = std::collections::HashSet::new();
        q.body
            .iter()
            .filter(|a| seen.insert(a.predicate))
            .map(|a| (a.predicate, a.arity()))
            .collect()
    };
    let tables: Vec<_> = preds
        .into_iter()
        .map(|(name, arity)| {
            prop::collection::vec(prop::collection::vec(0i64..4, arity), 0..8)
                .prop_map(move |rows| (name, rows))
        })
        .collect();
    tables.prop_map(|tables| {
        let mut db = Database::new();
        for (name, rows) in tables {
            for row in rows {
                db.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random query + database: `evaluate` and `execute_ordered` agree
    /// across all three engines, trace and answer order included. The
    /// generator's mix of chains, stars, cycles, self-joins, and
    /// disconnected bodies exercises both the Yannakakis reduction and
    /// its cyclic fallback.
    #[test]
    fn engines_agree_on_random_queries(
        (q, db) in arb_query().prop_flat_map(|q| {
            let db = arb_db(&q);
            (Just(q), db)
        })
    ) {
        all_engines(|| {
            let answer = evaluate(&q, &db);
            let trace = execute_ordered(&q.head, &q.body, &db);
            assert_eq!(trace.answer, answer);
            (
                trace.subgoal_sizes.clone(),
                trace.intermediate_sizes.clone(),
                trace.answer.as_slice().to_vec(),
            )
        });
    }
}

// ---------------------------------------------------------------------
// Workload-scale differential: the full pipeline (CoreCover over
// canonical databases, M1 planning, serving) under each engine, at
// thread counts 1 and 8, with and without node budgets.

fn served_renders(
    views: &ViewSet,
    stream: &[ConjunctiveQuery],
    engine: Engine,
    threads: usize,
    budget: BudgetSpec,
) -> Vec<String> {
    let server = BatchServer::with_config(
        views,
        ServeConfig {
            engine,
            budget,
            ..ServeConfig::default()
        },
    );
    server
        .serve_batch(stream, threads)
        .into_iter()
        .map(|r| match r {
            Ok(a) => a.render(),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

#[test]
fn engines_agree_on_served_workloads() {
    for (shape, seed) in [(0usize, 11u64), (1, 23), (2, 47)] {
        let make = match shape {
            0 => WorkloadConfig::star,
            1 => WorkloadConfig::chain,
            _ => WorkloadConfig::random,
        };
        let views = generate(&make(10, 1, seed)).views;
        let stream: Vec<ConjunctiveQuery> = (0..4)
            .map(|i| generate(&make(10, 1, seed + i as u64)).query)
            .collect();
        for budget in [BudgetSpec::new(), BudgetSpec::new().node_budget(500)] {
            for threads in [1usize, 8] {
                let row = served_renders(&views, &stream, Engine::Row, threads, budget);
                for engine in [Engine::Columnar, Engine::Yannakakis] {
                    let other = served_renders(&views, &stream, engine, threads, budget);
                    assert_eq!(
                        row,
                        other,
                        "{} diverged from row (shape {shape}, seed {seed}, threads {threads})",
                        engine.name()
                    );
                }
            }
        }
    }
}

/// Optimizer-chosen plans execute byte-identically under all three
/// engines over a random view database (the M2/M3 ground-truth costing
/// path). Annotated plans encode their own join order and drops, so the
/// Yannakakis engine executes them through the shared columnar driver —
/// the trace equality below is the proof that delegation stays exact.
#[test]
fn engines_agree_on_optimized_plan_traces() {
    for seed in [3u64, 9, 27] {
        let w = generate(&WorkloadConfig::chain(12, 0, seed));
        let mut base = Database::new();
        // Keep the chain joins small: the M2 exact oracle *executes*
        // every DP subset, so intermediate sizes grow like
        // rows·(rows/domain)^k.
        for (name, rows) in random_database(&w.query, 12, 12, seed) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let vdb = all_engines(|| materialize_views(&w.views, &base));
        let mut oracle = ExactOracle::new(&vdb);
        let Some(best) = Optimizer::new(&w.query, &w.views).best_plan(CostModel::M2, &mut oracle)
        else {
            continue;
        };
        all_engines(|| {
            let trace = best
                .plan
                .try_execute(&best.rewriting.head, &vdb)
                .expect("optimizer plans never drop head variables");
            (
                trace.subgoal_sizes.clone(),
                trace.intermediate_sizes.clone(),
                trace.answer.as_slice().to_vec(),
            )
        });
    }
}

// ---------------------------------------------------------------------
// Yannakakis edge cases: the reduction must not change any answer even
// when a relation is empty, missing, or joined against itself.

/// An empty (or entirely absent) relation empties the acyclic join; the
/// reduction short-circuits, and the answer stays byte-identical.
#[test]
fn engines_agree_with_empty_and_missing_relations() {
    let q = parse_query("q(X, Z) :- e(X, Y), f(Y, Z)").unwrap();
    // `f` registered but empty.
    let mut db = Database::new();
    db.insert_int("e", &[&[1, 2], &[3, 4]]);
    db.set("f".into(), viewplan::engine::Relation::new(2));
    let answer = all_engines(|| evaluate(&q, &db));
    assert!(answer.is_empty());
    // `f` missing entirely.
    let mut db = Database::new();
    db.insert_int("e", &[&[1, 2]]);
    let answer = all_engines(|| evaluate(&q, &db));
    assert!(answer.is_empty());
}

/// Self-joins: both atoms read the same stored relation, but the
/// reduction filters each *occurrence* independently (private per-atom
/// names), so dangling tuples drop from one side without corrupting the
/// other.
#[test]
fn engines_agree_on_self_joins() {
    let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
    let mut db = Database::new();
    // 1→2→3 chains; 7→8 dangles (no successor, no predecessor).
    db.insert_int("e", &[&[1, 2], &[2, 3], &[7, 8]]);
    let answer = all_engines(|| {
        let a = evaluate(&q, &db);
        let trace = execute_ordered(&q.head, &q.body, &db);
        assert_eq!(trace.answer, a);
        a.as_slice().to_vec()
    });
    assert_eq!(answer.len(), 1, "only 1→2→3 completes the 2-chain");
}

/// Routing counters: acyclic bodies run the reduction, cyclic bodies
/// take the fallback. Deltas use `>=` (shared registry).
#[test]
fn yannakakis_routing_counters_fire() {
    viewplan::obs::set_enabled(true);
    let _g = install(Engine::Yannakakis);
    let mut db = Database::new();
    db.insert_int("e", &[&[1, 2], &[2, 3]]);

    let chain = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
    let before = viewplan::obs::counter_value("engine.yannakakis_reductions");
    evaluate(&chain, &db);
    let after = viewplan::obs::counter_value("engine.yannakakis_reductions");
    assert!(after > before, "acyclic chain did not run the reduction");

    let triangle = parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, X)").unwrap();
    let before = viewplan::obs::counter_value("engine.yannakakis_fallbacks");
    evaluate(&triangle, &db);
    let after = viewplan::obs::counter_value("engine.yannakakis_fallbacks");
    assert!(after > before, "cyclic triangle did not fall back");
}

/// CLI: `eval --engine yannakakis` produces byte-identical stdout to
/// the row and columnar engines on the bundled example problem (the
/// served-answer agreement line included).
#[test]
fn cli_eval_is_byte_identical_across_engines() {
    let outputs: Vec<(String, String)> = ["row", "columnar", "yannakakis"]
        .iter()
        .map(|engine| {
            let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
                .args([
                    "eval",
                    "examples/problems/carlocpart.vp",
                    "--engine",
                    engine,
                ])
                .output()
                .expect("failed to spawn viewplan");
            assert!(
                out.status.success(),
                "--engine {engine} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            (
                engine.to_string(),
                String::from_utf8_lossy(&out.stdout).into_owned(),
            )
        })
        .collect();
    for (engine, stdout) in &outputs[1..] {
        assert_eq!(
            stdout, &outputs[0].1,
            "--engine {engine} stdout diverged from row"
        );
    }
}

// ---------------------------------------------------------------------
// Regression tests for the three error-path bugfixes.

/// Bugfix 1 (engine): a head variable the body never binds is a typed
/// error from both engines, not an `expect` panic.
#[test]
fn unbound_head_variable_is_a_typed_error() {
    let parsed = parse_query("q(A) :- r(A, B)").unwrap();
    let unsafe_q = ConjunctiveQuery::new(Atom::new("q", vec![Term::var("Z")]), parsed.body);
    let mut db = Database::new();
    db.insert_int("r", &[&[1, 2]]);
    for engine in [Engine::Row, Engine::Columnar] {
        let _g = install(engine);
        let err = try_evaluate(&unsafe_q, &db).unwrap_err();
        assert!(
            matches!(err, EngineError::UnboundHeadVariable { .. }),
            "expected UnboundHeadVariable, got {err}"
        );
    }
}

/// Bugfix 1 (CLI): an unsafe head query is an input error — exit 2 with
/// a diagnostic, never a panic (exit 101) or an internal error (exit 1).
#[test]
fn unsafe_head_query_exits_2() {
    let path = std::env::temp_dir().join("viewplan_diff_unsafe.vp");
    std::fs::write(&path, "q(X) :- r(A, B).\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .args(["eval", path.to_str().unwrap()])
        .output()
        .expect("failed to spawn viewplan");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unsafe") || stderr.contains("head variable"),
        "stderr should explain the unsafe head: {stderr}"
    );
}

/// Bugfix 2: a subgoal whose arity disagrees with the stored relation
/// counts every skipped tuple in `engine.arity_mismatch_skips` (and
/// still evaluates to the empty answer) instead of skipping silently.
#[test]
fn arity_mismatch_increments_counter() {
    viewplan::obs::set_enabled(true);
    let q = parse_query("q(X) :- r(X, Y, Z)").unwrap();
    let mut db = Database::new();
    db.insert_int("r", &[&[1, 2], &[3, 4], &[5, 6]]); // stored arity 2, used with 3
    let before = viewplan::obs::counter_value("engine.arity_mismatch_skips");
    let answer = all_engines(|| evaluate(&q, &db));
    assert!(answer.is_empty());
    let after = viewplan::obs::counter_value("engine.arity_mismatch_skips");
    // 3 skipped tuples per engine (the Yannakakis reducer mirrors the
    // join driver's per-atom accounting); `>=` because other tests
    // share the process-global metrics registry.
    assert!(
        after >= before + 9,
        "expected +9 skips, counter went {before} -> {after}"
    );
}

/// Bugfix 3 (API): re-registering a relation at a different arity is a
/// typed error, not a silently reused wrong-arity relation.
#[test]
fn arity_conflict_is_a_typed_error() {
    let mut db = Database::new();
    assert!(db
        .try_insert("r", vec![Value::Int(1), Value::Int(2)])
        .unwrap());
    let err = db.try_insert("r", vec![Value::Int(1)]).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::ArityConflict {
                existing: 2,
                requested: 1,
                ..
            }
        ),
        "expected ArityConflict, got {err}"
    );
    // The original relation is untouched.
    assert_eq!(db.get("r".into()).map(|r| r.len()), Some(1));
}

/// Bugfix 3 (CLI): a fact file whose facts disagree on a predicate's
/// arity exits 2 with a diagnostic naming the arity conflict.
#[test]
fn conflicting_fact_arity_exits_2() {
    let path = std::env::temp_dir().join("viewplan_diff_arity.vp");
    std::fs::write(&path, "q(X) :- r(X, Y).\nr(1, 2).\nr(1, 2, 3).\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .args(["eval", path.to_str().unwrap()])
        .output()
        .expect("failed to spawn viewplan");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("arity"),
        "stderr should name the arity conflict: {stderr}"
    );
}
