//! Differential testing across all four rewriting generators: CoreCover,
//! the naive Theorem 3.1 search, MiniCon (equivalence-filtered), and the
//! bucket algorithm. They explore different spaces, but everything any of
//! them emits must be a genuine equivalent rewriting, and none may beat
//! CoreCover's minimum subgoal count.

use viewplan::core::bucket_rewritings;
use viewplan::prelude::*;

fn all_generators(
    q: &ConjunctiveQuery,
    views: &ViewSet,
) -> Vec<(&'static str, Vec<ConjunctiveQuery>)> {
    vec![
        (
            "corecover",
            CoreCover::new(q, views).run().rewritings().to_vec(),
        ),
        ("naive", naive_gmrs(q, views)),
        ("minicon", minicon_rewritings(q, views, true, 300)),
        ("bucket", bucket_rewritings(q, views, 20_000)),
    ]
}

#[test]
fn every_generator_emits_only_equivalent_rewritings() {
    for seed in 0..6 {
        for config in [
            WorkloadConfig::chain(10, 0, seed),
            WorkloadConfig::chain(10, 1, seed),
            WorkloadConfig::star(10, 0, seed),
        ] {
            let w = generate(&config);
            let qm = minimize(&w.query);
            for (name, rewritings) in all_generators(&w.query, &w.views) {
                for r in rewritings.iter().take(10) {
                    let exp = expand(r, &w.views).unwrap();
                    assert!(
                        are_equivalent(&exp, &qm),
                        "{name} emitted non-equivalent {r} (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn corecover_minimum_is_a_global_lower_bound() {
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::chain(10, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        let Some(gmr) = cc.rewritings().first() else {
            // If CoreCover finds nothing, nobody may find anything.
            for (name, rewritings) in all_generators(&w.query, &w.views) {
                assert!(
                    rewritings.is_empty(),
                    "{name} found a rewriting CoreCover missed (seed {seed})"
                );
            }
            continue;
        };
        for (name, rewritings) in all_generators(&w.query, &w.views) {
            for r in &rewritings {
                assert!(
                    r.body.len() >= gmr.body.len(),
                    "{name} beat the GMR size with {r} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn existence_is_agreed_on_by_complete_generators() {
    // CoreCover and the naive search are both complete for equivalent
    // rewritings (Theorem 3.1); MiniCon and bucket must agree on
    // existence too, because an equivalent rewriting exists iff one using
    // view tuples exists, which both can reach after their respective
    // validation steps... MiniCon's disjointness restriction can in
    // principle miss overlap-requiring rewritings, so only assert one
    // direction for it: if MiniCon finds one, CoreCover must.
    for seed in 0..8 {
        let w = generate(&WorkloadConfig::star(10, 1, seed));
        let cc_found = !CoreCover::new(&w.query, &w.views)
            .run()
            .rewritings()
            .is_empty();
        let naive_found = !naive_gmrs(&w.query, &w.views).is_empty();
        assert_eq!(cc_found, naive_found, "seed {seed}");
        let mc_found = !minicon_rewritings(&w.query, &w.views, true, 300).is_empty();
        if mc_found {
            assert!(
                cc_found,
                "MiniCon found one but CoreCover missed it (seed {seed})"
            );
        }
        let bucket_found = !bucket_rewritings(&w.query, &w.views, 20_000).is_empty();
        if bucket_found {
            assert!(
                cc_found,
                "bucket found one but CoreCover missed it (seed {seed})"
            );
        }
    }
}

#[test]
fn all_generators_answers_agree_on_data() {
    // Whatever each generator emits computes the same answer over the
    // materialized views.
    for seed in 0..4 {
        let w = generate(&WorkloadConfig::chain(8, 0, seed));
        let mut base = Database::new();
        for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x5a) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let direct = evaluate(&w.query, &base);
        let vdb = materialize_views(&w.views, &base);
        for (name, rewritings) in all_generators(&w.query, &w.views) {
            for r in rewritings.iter().take(5) {
                assert_eq!(
                    direct,
                    evaluate(r, &vdb),
                    "{name}: {r} disagrees (seed {seed})"
                );
            }
        }
    }
}
