//! Differential testing across all four rewriting generators: CoreCover,
//! the naive Theorem 3.1 search, MiniCon (equivalence-filtered), and the
//! bucket algorithm. They explore different spaces, but everything any of
//! them emits must be a genuine equivalent rewriting, and none may beat
//! CoreCover's minimum subgoal count.
//!
//! The second half turns the same oracle on the serving layer: a warm,
//! batched, cached [`BatchServer`] must render answers byte-identical to
//! cold single-query runs at every thread count, and budget-truncated
//! answers must never poison the cache.

use proptest::prelude::*;
use std::collections::HashSet;
use viewplan::containment::canonicalize;
use viewplan::core::bucket_rewritings;
use viewplan::obs::BudgetSpec;
use viewplan::prelude::*;

fn all_generators(
    q: &ConjunctiveQuery,
    views: &ViewSet,
) -> Vec<(&'static str, Vec<ConjunctiveQuery>)> {
    vec![
        (
            "corecover",
            CoreCover::new(q, views).run().rewritings().to_vec(),
        ),
        ("naive", naive_gmrs(q, views)),
        ("minicon", minicon_rewritings(q, views, true, 300)),
        ("bucket", bucket_rewritings(q, views, 20_000)),
    ]
}

#[test]
fn every_generator_emits_only_equivalent_rewritings() {
    for seed in 0..6 {
        for config in [
            WorkloadConfig::chain(10, 0, seed),
            WorkloadConfig::chain(10, 1, seed),
            WorkloadConfig::star(10, 0, seed),
        ] {
            let w = generate(&config);
            let qm = minimize(&w.query);
            for (name, rewritings) in all_generators(&w.query, &w.views) {
                for r in rewritings.iter().take(10) {
                    let exp = expand(r, &w.views).unwrap();
                    assert!(
                        are_equivalent(&exp, &qm),
                        "{name} emitted non-equivalent {r} (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn corecover_minimum_is_a_global_lower_bound() {
    for seed in 0..6 {
        let w = generate(&WorkloadConfig::chain(10, 0, seed));
        let cc = CoreCover::new(&w.query, &w.views).run();
        let Some(gmr) = cc.rewritings().first() else {
            // If CoreCover finds nothing, nobody may find anything.
            for (name, rewritings) in all_generators(&w.query, &w.views) {
                assert!(
                    rewritings.is_empty(),
                    "{name} found a rewriting CoreCover missed (seed {seed})"
                );
            }
            continue;
        };
        for (name, rewritings) in all_generators(&w.query, &w.views) {
            for r in &rewritings {
                assert!(
                    r.body.len() >= gmr.body.len(),
                    "{name} beat the GMR size with {r} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn existence_is_agreed_on_by_complete_generators() {
    // CoreCover and the naive search are both complete for equivalent
    // rewritings (Theorem 3.1); MiniCon and bucket must agree on
    // existence too, because an equivalent rewriting exists iff one using
    // view tuples exists, which both can reach after their respective
    // validation steps... MiniCon's disjointness restriction can in
    // principle miss overlap-requiring rewritings, so only assert one
    // direction for it: if MiniCon finds one, CoreCover must.
    for seed in 0..8 {
        let w = generate(&WorkloadConfig::star(10, 1, seed));
        let cc_found = !CoreCover::new(&w.query, &w.views)
            .run()
            .rewritings()
            .is_empty();
        let naive_found = !naive_gmrs(&w.query, &w.views).is_empty();
        assert_eq!(cc_found, naive_found, "seed {seed}");
        let mc_found = !minicon_rewritings(&w.query, &w.views, true, 300).is_empty();
        if mc_found {
            assert!(
                cc_found,
                "MiniCon found one but CoreCover missed it (seed {seed})"
            );
        }
        let bucket_found = !bucket_rewritings(&w.query, &w.views, 20_000).is_empty();
        if bucket_found {
            assert!(
                cc_found,
                "bucket found one but CoreCover missed it (seed {seed})"
            );
        }
    }
}

/// Renames every variable of `q` with a per-variant suffix, producing a
/// distinct-looking query with the same canonical form.
fn renamed_variant(q: &ConjunctiveQuery, variant: usize) -> ConjunctiveQuery {
    let mut subst = Substitution::new();
    for v in q.variables() {
        subst.bind(v, Term::var(&format!("{v}__r{variant}")));
    }
    q.apply(&subst)
}

/// A workload stream with recurring traffic: each seed's query appears
/// verbatim, renamed, and verbatim again, so a warm cache sees both
/// exact repeats and variable-renamed repeats.
fn workload_stream(shape: usize, seed: u64, nqueries: usize) -> (ViewSet, Vec<ConjunctiveQuery>) {
    let make = match shape {
        0 => WorkloadConfig::star,
        1 => WorkloadConfig::chain,
        _ => WorkloadConfig::random,
    };
    let views = generate(&make(10, 1, seed)).views;
    let queries: Vec<ConjunctiveQuery> = (0..nqueries)
        .map(|i| generate(&make(10, 1, seed + i as u64)).query)
        .collect();
    let mut stream = queries.clone();
    stream.extend(
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| renamed_variant(q, i)),
    );
    stream.extend(queries);
    (views, stream)
}

/// Cold oracle: every query served by a fresh, cache-less, serial server.
fn cold_renders(views: &ViewSet, stream: &[ConjunctiveQuery], config: &ServeConfig) -> Vec<String> {
    stream
        .iter()
        .map(|q| {
            let server = BatchServer::with_config(
                views,
                ServeConfig {
                    cache_capacity: 0,
                    ..config.clone()
                },
            );
            server.serve(q).expect("cold serve").render()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract, adversarially sampled: a warm cached batch
    /// renders byte-identically to cold single-query runs at thread
    /// counts 1, 2, and 8.
    #[test]
    fn batch_warm_renders_byte_identical_to_cold(
        (shape, seed, nqueries) in (0..3usize, 0..1000u64, 2..5usize)
    ) {
        let (views, stream) = workload_stream(shape, seed, nqueries);
        let config = ServeConfig::default();
        let cold = cold_renders(&views, &stream, &config);
        for threads in [1, 2, 8] {
            let server = BatchServer::with_config(&views, config.clone());
            let warm: Vec<String> = server
                .serve_batch(&stream, threads)
                .into_iter()
                .map(|r| r.expect("warm serve").render())
                .collect();
            prop_assert_eq!(
                &warm, &cold,
                "warm batch diverged from cold serial (shape {}, seed {}, threads {})",
                shape, seed, threads
            );
        }
    }

    /// Node budgets are deterministic, so a budgeted batch must still be
    /// byte-identical to budgeted cold runs — and truncated answers must
    /// never enter the cache (the poisoning rule), while complete ones
    /// all do.
    #[test]
    fn budgeted_batch_is_deterministic_and_never_caches_truncation(
        (shape, seed, budget) in (0..3usize, 0..1000u64, 20..2000u64)
    ) {
        let (views, stream) = workload_stream(shape, seed, 3);
        let config = ServeConfig {
            budget: BudgetSpec::new().node_budget(budget),
            ..ServeConfig::default()
        };
        let cold = cold_renders(&views, &stream, &config);
        let server = BatchServer::with_config(&views, config.clone());
        let answers: Vec<ServedAnswer> = server
            .serve_batch(&stream, 4)
            .into_iter()
            .map(|r| r.expect("budgeted serve"))
            .collect();
        let warm: Vec<String> = answers.iter().map(|a| a.render()).collect();
        prop_assert_eq!(&warm, &cold, "budgeted batch diverged (shape {shape}, seed {seed})");

        // The cache holds exactly the canonical keys that produced a
        // complete answer; every incomplete serving was counted and
        // dropped. (Node budgets are per-request and deterministic, so a
        // canonical query is either always complete or always truncated.)
        let mut complete_keys = HashSet::new();
        let mut incomplete_servings = 0u64;
        for (q, a) in stream.iter().zip(&answers) {
            if a.completeness.is_incomplete() {
                incomplete_servings += 1;
            } else {
                complete_keys.insert(canonicalize(q).key);
            }
        }
        let cache = server.cache().expect("cache is on by default");
        prop_assert_eq!(cache.len(), complete_keys.len());
        prop_assert_eq!(cache.stats().rejected_incomplete, incomplete_servings);
    }
}

/// Baseline agreement survives the serving layer: the cached server's
/// rewritings are exactly CoreCover's, warm or cold, and MiniCon never
/// finds a rewriting the server misses.
#[test]
fn served_rewritings_agree_with_baselines_under_caching() {
    for seed in 0..8 {
        let w = generate(&WorkloadConfig::star(10, 1, seed));
        let server = BatchServer::new(&w.views);
        // Serve twice: the second answer comes from the cache.
        let cold = server.serve(&w.query).expect("serve");
        let warm = server.serve(&w.query).expect("serve");
        assert_eq!(cold.render(), warm.render(), "seed {seed}");
        let direct = CoreCover::new(&w.query, &w.views).run();
        assert_eq!(
            cold.rewritings
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>(),
            direct
                .rewritings()
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>(),
            "served rewritings must match a direct CoreCover run (seed {seed})"
        );
        if !minicon_rewritings(&w.query, &w.views, true, 300).is_empty() {
            assert!(
                !cold.rewritings.is_empty(),
                "MiniCon found a rewriting the server missed (seed {seed})"
            );
        }
    }
}

#[test]
fn all_generators_answers_agree_on_data() {
    // Whatever each generator emits computes the same answer over the
    // materialized views.
    for seed in 0..4 {
        let w = generate(&WorkloadConfig::chain(8, 0, seed));
        let mut base = Database::new();
        for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x5a) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let direct = evaluate(&w.query, &base);
        let vdb = materialize_views(&w.views, &base);
        for (name, rewritings) in all_generators(&w.query, &w.views) {
            for r in rewritings.iter().take(5) {
                assert_eq!(
                    direct,
                    evaluate(r, &vdb),
                    "{name}: {r} disagrees (seed {seed})"
                );
            }
        }
    }
}
