//! Golden-corpus snapshot tests: the paper's numbered examples (and a
//! few generator-derived streams) run through the real `viewplan`
//! binary, with stdout compared byte-for-byte against checked-in
//! expectations under `tests/golden/expected/`.
//!
//! Only stdout is golden — stderr carries timings and cache counters,
//! which are deliberately nondeterministic. To accept new output after
//! an intentional change:
//!
//! ```text
//! VIEWPLAN_REGEN_GOLDEN=1 cargo test --test golden_corpus
//! ```

use std::path::Path;
use std::process::Command;

/// Runs `viewplan <args>` from the repo root and compares its stdout to
/// `tests/golden/expected/<name>.txt`.
fn check(name: &str, args: &[&str]) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .current_dir(root)
        .args(args)
        .output()
        .expect("failed to spawn viewplan");
    assert!(
        out.status.success(),
        "viewplan {args:?} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8(out.stdout).expect("stdout must be UTF-8");
    let expected_path = root
        .join("tests/golden/expected")
        .join(format!("{name}.txt"));

    if std::env::var_os("VIEWPLAN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected_path, &actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", expected_path.display()));
        return;
    }

    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n\
             hint: VIEWPLAN_REGEN_GOLDEN=1 cargo test --test golden_corpus",
            expected_path.display()
        )
    });
    if actual != expected {
        panic!(
            "golden mismatch for {name}:\n{}\n\
             hint: VIEWPLAN_REGEN_GOLDEN=1 cargo test --test golden_corpus",
            first_divergence(&expected, &actual)
        );
    }
}

/// The first line where expected and actual output disagree, for a diff
/// small enough to read in a CI log.
fn first_divergence(expected: &str, actual: &str) -> String {
    let (mut exp, mut act) = (expected.lines(), actual.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (exp.next(), act.next()) {
            (None, None) => return "outputs differ only in trailing bytes".to_string(),
            (e, a) if e == a => continue,
            (e, a) => {
                return format!(
                    "line {line}:\n  expected: {}\n  actual:   {}",
                    e.unwrap_or("<end of output>"),
                    a.unwrap_or("<end of output>")
                );
            }
        }
    }
}

/// Goldens the `--stats-json` *counters* of a serial `rewrite` run —
/// counter values are deterministic for a serial pipeline; the span
/// timings in the rest of the report are not, so only this section is
/// snapshotted (rendered as sorted `key = value` lines).
fn check_stats_counters(name: &str, problem: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let json_path = std::env::temp_dir().join(format!("viewplan_golden_{name}.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .current_dir(root)
        // Pin the serial pipeline regardless of the ambient
        // VIEWPLAN_THREADS: parallel runs add scheduler counters
        // (parallel.batches/tasks) that are not part of this snapshot.
        .env("VIEWPLAN_THREADS", "1")
        // Pin the execution engine too: the row and columnar engines
        // register the same shared counters, but the columnar engine
        // adds engine.batch_* counters this snapshot includes.
        .env("VIEWPLAN_ENGINE", "columnar")
        // And pin the acyclic fast path on: routing decides whether
        // containment bumps `containment.acyclic_fast_path` or the
        // homomorphism-search counters, so the snapshot must not float
        // with the ambient VIEWPLAN_ACYCLIC matrix dimension.
        .env("VIEWPLAN_ACYCLIC", "on")
        .args([
            "rewrite",
            problem,
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn viewplan");
    assert!(
        out.status.success(),
        "viewplan rewrite {problem} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).expect("stats-json report must exist");
    let _ = std::fs::remove_file(&json_path);
    let report = viewplan::obs::parse_json(&text).expect("report must be valid JSON");
    let viewplan::obs::Json::Object(counters) =
        report.get("counters").expect("report must have counters")
    else {
        panic!("counters must be a JSON object");
    };
    let mut actual = String::new();
    for (key, value) in counters {
        actual.push_str(&format!(
            "{key} = {}\n",
            value.as_u64().expect("counters are integers")
        ));
    }

    let expected_path = root
        .join("tests/golden/expected")
        .join(format!("{name}.txt"));
    if std::env::var_os("VIEWPLAN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected_path, &actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", expected_path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n\
             hint: VIEWPLAN_REGEN_GOLDEN=1 cargo test --test golden_corpus",
            expected_path.display()
        )
    });
    if actual != expected {
        panic!(
            "golden counter mismatch for {name}:\n{}\n\
             hint: VIEWPLAN_REGEN_GOLDEN=1 cargo test --test golden_corpus",
            first_divergence(&expected, &actual)
        );
    }
}

#[test]
fn example_1_1_stats_counters() {
    check_stats_counters(
        "example_1_1_stats_counters",
        "tests/golden/example_1_1_carlocpart.vp",
    );
}

#[test]
fn example_4_1_stats_counters() {
    check_stats_counters(
        "example_4_1_stats_counters",
        "tests/golden/example_4_1_table2.vp",
    );
}

#[test]
fn acyclic_chain_stats_counters() {
    check_stats_counters(
        "acyclic_chain_stats_counters",
        "examples/problems/acyclic_chain.vp",
    );
}

macro_rules! golden {
    ($($name:ident => [$($arg:expr),+ $(,)?];)+) => {$(
        #[test]
        fn $name() {
            check(stringify!($name), &[$($arg),+]);
        }
    )+};
}

golden! {
    // The paper's numbered examples through `rewrite`.
    example_1_1_rewrite => ["rewrite", "tests/golden/example_1_1_carlocpart.vp"];
    example_1_1_all_minimal =>
        ["rewrite", "tests/golden/example_1_1_carlocpart.vp", "--all-minimal"];
    example_1_1_no_grouping =>
        ["rewrite", "tests/golden/example_1_1_carlocpart.vp", "--no-grouping"];
    example_3_1_rewrite => ["rewrite", "tests/golden/example_3_1_lmr_chain.vp"];
    example_4_1_rewrite => ["rewrite", "tests/golden/example_4_1_table2.vp"];
    example_4_2_rewrite => ["rewrite", "tests/golden/example_4_2_minicon_gap.vp"];
    example_4_2_minicon_baseline =>
        ["rewrite", "tests/golden/example_4_2_minicon_gap.vp", "--baseline", "minicon"];
    example_6_1_all_minimal =>
        ["rewrite", "tests/golden/example_6_1_figure5.vp", "--all-minimal"];
    section_3_2_rewrite => ["rewrite", "tests/golden/section_3_2_gmr_not_cmr.vp"];
    section_8_rewrite => ["rewrite", "tests/golden/section_8_shape.vp"];
    unanswerable_rewrite => ["rewrite", "tests/golden/unanswerable.vp"];

    // End-to-end plans (cost models over the bundled base data).
    carlocpart_plan_m2 => ["plan", "examples/problems/carlocpart.vp", "--model", "m2"];
    example_6_1_plan_m3 => ["plan", "tests/golden/example_6_1_figure5.vp", "--model", "m3"];

    // The serving layer: per-query stdout is deterministic at any thread
    // count and cache setting, so batches golden cleanly.
    batch_carlocpart => ["batch", "tests/golden/batch_carlocpart.vp"];
    batch_carlocpart_no_cache =>
        ["batch", "tests/golden/batch_carlocpart.vp", "--no-cache", "--threads", "4"];
    batch_example41_variants => ["batch", "tests/golden/batch_example41.vp"];

    // Provenance: `explain --json` is a machine interface and every
    // field it emits is deterministic for a fixed input (measured sizes
    // come from the bundled base data, not wall clock). Example 3.1 has
    // no facts (M1 provenance); Example 6.1 exercises the M3 breakdown
    // with the paper's Figure 5 data.
    explain_json_example_3_1 =>
        ["explain", "tests/golden/example_3_1_lmr_chain.vp", "--json"];
    explain_json_example_6_1 =>
        ["explain", "tests/golden/example_6_1_figure5.vp", "--model", "m3", "--json"];
    explain_example_6_1_human =>
        ["explain", "tests/golden/example_6_1_figure5.vp", "--model", "m3"];

    // Static analysis: `check --json` is a machine interface (editors,
    // CI annotations), so its exact bytes are golden. One clean fixture
    // and one with a deliberate VP005 warning (warnings exit 0).
    check_json_example_1_1 => ["check", "tests/golden/example_1_1_carlocpart.vp", "--json"];
    check_json_unanswerable => ["check", "tests/golden/unanswerable.vp", "--json"];

    // The acyclic fixtures: structural provenance (the `structure` line
    // and VP007's hypertree-width annotation) is a property of the
    // hypergraph, not of the routing switch, so these snapshots are
    // byte-identical under VIEWPLAN_ACYCLIC=on and =off — CI runs both.
    // The star's winner is a single bundled-view access; the chain's
    // twelve hops tile into exactly three v4 accesses, and its VP007
    // candidate estimate crosses the blowup threshold with the width
    // annotation explaining why the blowup is benign.
    acyclic_star_rewrite => ["rewrite", "examples/problems/acyclic_star.vp"];
    acyclic_chain_rewrite => ["rewrite", "examples/problems/acyclic_chain.vp"];
    explain_acyclic_star => ["explain", "examples/problems/acyclic_star.vp"];
    explain_json_acyclic_chain => ["explain", "examples/problems/acyclic_chain.vp", "--json"];
    check_json_acyclic_star => ["check", "examples/problems/acyclic_star.vp", "--json"];
    check_json_acyclic_chain => ["check", "examples/problems/acyclic_chain.vp", "--json"];

    // Generator-derived streams (deterministic in the seed).
    batch_workload_star =>
        ["batch", "--workload", "star", "--queries", "4", "--views", "10",
         "--seed", "3", "--repeat", "2"];
    batch_workload_chain =>
        ["batch", "--workload", "chain", "--queries", "3", "--views", "8",
         "--seed", "5", "--repeat", "2"];
}
