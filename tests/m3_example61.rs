//! Example 6.1 / Figure 5, end to end: the supplementary-relation
//! approach vs. the paper's §6.2 renaming heuristic, with exact sizes
//! measured by the engine.

use viewplan::cost::plan_with_order;
use viewplan::prelude::*;

fn setup() -> (ConjunctiveQuery, ViewSet, Database) {
    let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
    let views = parse_views(
        "v1(A, B) :- r(A, A), s(B, B).\n\
         v2(A, B) :- t(A, B), s(B, B).",
    )
    .unwrap();
    let mut base = Database::new();
    base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
    let vdb = materialize_views(&views, &base);
    (q, views, vdb)
}

/// The Figure 5 view relations: v2 matches the paper's table exactly; v1
/// is the paper's four ⟨1, ·⟩ rows plus the other r-loop/s-loop pairs
/// (the paper's figure lists the fragment relevant to the argument).
#[test]
fn figure5_views() {
    let (_, _, vdb) = setup();
    let v2 = vdb.get("v2".into()).unwrap();
    assert_eq!(v2.len(), 4);
    for pair in [[1, 2], [3, 4], [5, 6], [7, 8]] {
        assert!(v2.contains(&[Value::Int(pair[0]), Value::Int(pair[1])]));
    }
    let v1 = vdb.get("v1".into()).unwrap();
    for b in [2, 4, 6, 8] {
        assert!(v1.contains(&[Value::Int(1), Value::Int(b)]));
    }
}

/// P2 is the only minimal rewriting using view tuples (the paper's
/// observation that P1's fresh variable C puts it outside the space).
#[test]
fn p2_is_the_view_tuple_rewriting() {
    let (q, views, _) = setup();
    let result = CoreCover::new(&q, &views).run_all_minimal();
    let printed: Vec<String> = result.rewritings().iter().map(|r| r.to_string()).collect();
    assert_eq!(printed, ["q(A) :- v1(A, B), v2(A, B)"]);
}

/// The headline comparison: under the supplementary-relation approach the
/// first GSR keeps B (size 20 here); with the renaming heuristic B drops
/// and the GSR collapses to the distinct A values (5). cost(F1) < cost(F2).
#[test]
fn renaming_beats_supplementary() {
    let (q, views, vdb) = setup();
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut oracle = ExactOracle::new(&vdb);
    let (_, gsr_supp, cost_supp) = plan_with_order(
        &q,
        &views,
        &p2,
        &[0, 1],
        DropPolicy::Supplementary,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    let (plan_smart, gsr_smart, cost_smart) = plan_with_order(
        &q,
        &views,
        &p2,
        &[0, 1],
        DropPolicy::SmartCostBased,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    assert_eq!(gsr_supp[0], 20.0);
    assert_eq!(gsr_smart[0], 5.0);
    assert!(cost_smart < cost_supp);
    // The smart plan drops something at step 1.
    assert!(!plan_smart.steps[0].drop_after.is_empty());
}

/// "If we reverse the two subgoals in the two orderings, the new physical
/// plan of P1 is still more efficient than that of P2": the reversed order
/// with smart drops is also at least as cheap as reversed supplementary.
#[test]
fn reversed_order_preserves_the_gap() {
    let (q, views, vdb) = setup();
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut oracle = ExactOracle::new(&vdb);
    let (_, _, cost_supp) = plan_with_order(
        &q,
        &views,
        &p2,
        &[1, 0],
        DropPolicy::Supplementary,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    let (_, _, cost_smart) = plan_with_order(
        &q,
        &views,
        &p2,
        &[1, 0],
        DropPolicy::SmartCostBased,
        &mut oracle,
    )
    .expect("unbudgeted planning always completes");
    assert!(cost_smart <= cost_supp);
}

/// All plans — with or without smart drops — compute the paper's answer
/// q(1).
#[test]
fn all_plans_compute_the_answer() {
    let (q, views, vdb) = setup();
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut oracle = ExactOracle::new(&vdb);
    for policy in [
        DropPolicy::Supplementary,
        DropPolicy::SmartAggressive,
        DropPolicy::SmartCostBased,
    ] {
        for order in [[0usize, 1], [1, 0]] {
            let (plan, _, _) = plan_with_order(&q, &views, &p2, &order, policy, &mut oracle)
                .expect("unbudgeted planning always completes");
            let trace = plan.try_execute(&p2.head, &vdb).unwrap();
            assert_eq!(
                trace.answer.as_slice(),
                [vec![Value::Int(1)]],
                "policy {policy:?}, order {order:?}"
            );
        }
    }
}

/// The full optimizer under M3 picks a plan at least as cheap as every
/// hand-written order/policy combination above.
#[test]
fn optimizer_m3_is_at_least_as_good() {
    let (q, views, vdb) = setup();
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut oracle = ExactOracle::new(&vdb);
    let best = Optimizer::new(&q, &views)
        .best_plan(CostModel::M3(DropPolicy::SmartCostBased), &mut oracle)
        .unwrap();
    for order in [[0usize, 1], [1, 0]] {
        for policy in [DropPolicy::Supplementary, DropPolicy::SmartCostBased] {
            let (_, _, cost) = plan_with_order(&q, &views, &p2, &order, policy, &mut oracle)
                .expect("unbudgeted planning always completes");
            assert!(best.cost <= cost);
        }
    }
}
