//! The optimizer driven by *estimated* statistics (the realistic mode: a
//! System-R style catalog, independence assumption) versus exact
//! engine-measured sizes.

use viewplan::cost::{optimal_m2_order, Catalog, EstimateOracle, ExactOracle, RelationStats};
use viewplan::prelude::*;

#[test]
fn estimator_picks_the_selective_side_first() {
    // big ⋈ sel: any reasonable estimator starts with the selective
    // relation.
    let mut cat = Catalog::new();
    cat.set("big", RelationStats::uniform(2, 10_000.0, 100.0));
    cat.set("sel", RelationStats::uniform(1, 3.0, 3.0));
    let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
    let mut oracle = EstimateOracle::new(&cat);
    let (order, _, _) = optimal_m2_order(&q.body, &mut oracle).unwrap();
    assert_eq!(order[0], 1, "sel must come first");
}

#[test]
fn estimated_plans_still_compute_correct_answers() {
    for seed in 0..5 {
        let w = generate(&WorkloadConfig::chain(15, 0, seed));
        let mut base = Database::new();
        for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x42) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let vdb = materialize_views(&w.views, &base);
        let catalog = Catalog::from_database(&vdb);
        let mut estimator = EstimateOracle::new(&catalog);
        let Some(plan) =
            Optimizer::new(&w.query, &w.views).best_plan(CostModel::M2, &mut estimator)
        else {
            continue;
        };
        let trace = plan.plan.try_execute(&plan.rewriting.head, &vdb).unwrap();
        let direct = evaluate(&w.query, &base);
        assert_eq!(direct, trace.answer, "seed {seed}");
    }
}

#[test]
fn estimated_choice_is_close_to_exact_optimal_on_measured_catalogs() {
    // With a catalog measured from the actual view database, the
    // estimator's chosen rewriting+order — re-costed EXACTLY — should not
    // be catastrophically worse than the exact optimum. (The independence
    // assumption can still mislead, so allow generous slack; the point is
    // that the machinery plugs together and stays sane.)
    let mut checked = 0;
    for seed in 0..8 {
        let w = generate(&WorkloadConfig::chain(15, 0, seed));
        let mut base = Database::new();
        for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x777) {
            for row in rows {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let vdb = materialize_views(&w.views, &base);
        let catalog = Catalog::from_database(&vdb);
        let mut estimator = EstimateOracle::new(&catalog);
        let Some(est_plan) =
            Optimizer::new(&w.query, &w.views).best_plan(CostModel::M2, &mut estimator)
        else {
            continue;
        };
        let mut exact = ExactOracle::new(&vdb);
        let Some(exact_plan) =
            Optimizer::new(&w.query, &w.views).best_plan(CostModel::M2, &mut exact)
        else {
            continue;
        };
        // Re-cost the estimated plan exactly by executing it.
        let est_trace = est_plan
            .plan
            .try_execute(&est_plan.rewriting.head, &vdb)
            .unwrap();
        let est_exact_cost = est_trace.cost() as f64;
        assert!(
            est_exact_cost + 1e-9 >= exact_plan.cost,
            "exact optimum must be a lower bound (seed {seed})"
        );
        assert!(
            est_exact_cost <= exact_plan.cost * 20.0 + 100.0,
            "estimated choice wildly off (seed {seed}): {est_exact_cost} vs {}",
            exact_plan.cost
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few workloads exercised the comparison");
}

#[test]
fn empty_catalog_degrades_gracefully() {
    let cat = Catalog::new();
    let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
    let mut oracle = EstimateOracle::new(&cat);
    // Unknown relations estimate as empty: the DP still returns an order.
    let (order, ir, cost) = optimal_m2_order(&q.body, &mut oracle).unwrap();
    assert_eq!(order.len(), 2);
    assert!(ir.iter().all(|&s| s == 0.0));
    assert_eq!(cost, 0.0);
}
