//! End-to-end reproduction of every numbered example in the paper.

use viewplan::prelude::*;

fn carlocpart() -> (ConjunctiveQuery, ViewSet) {
    (
        parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap(),
        parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap(),
    )
}

/// Example 1.1 + §2.1: P1–P5 are all equivalent rewritings; P1 ≡ P2 as
/// expansions but not as queries.
#[test]
fn example_11_rewritings() {
    let (q, views) = carlocpart();
    let ps: Vec<ConjunctiveQuery> = [
        "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)",
        "q1(S, C) :- v1(M, a, C), v2(S, M, C)",
        "q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)",
        "q1(S, C) :- v4(M, a, C, S)",
        "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    for p in &ps {
        let exp = expand(p, &views).unwrap();
        assert!(are_equivalent(&exp, &q), "{p} must be a rewriting");
    }
    // Equivalent as expansions…
    let e1 = expand(&ps[0], &views).unwrap();
    let e2 = expand(&ps[1], &views).unwrap();
    assert!(are_equivalent(&e1, &e2));
    // …but not equivalent as queries (P2 ⊏ P1 properly).
    assert!(is_contained_in(&ps[1], &ps[0]));
    assert!(!is_contained_in(&ps[0], &ps[1]));
}

/// §3.3: the canonical database and the view tuples of the running
/// example.
#[test]
fn section_33_view_tuples() {
    let (q, views) = carlocpart();
    let tuples = view_tuples(&minimize(&q), &views);
    // Sort before comparing: the tuple *set* is the specified result;
    // their enumeration order is an implementation detail.
    let mut printed: Vec<String> = tuples.iter().map(|t| t.to_string()).collect();
    printed.sort();
    assert_eq!(
        printed,
        [
            "v1(M, a, C)",
            "v2(S, M, C)",
            "v3(S)",
            "v4(M, a, C, S)",
            "v5(M, a, C)"
        ]
    );
}

/// Lemma 3.2's constructive transformation: P1 transforms into a
/// view-tuple-only rewriting equivalent to P2.
#[test]
fn lemma_32_transformation() {
    let (q, views) = carlocpart();
    // Apply the mapping {M1→M, C1→C} to P1 and drop the duplicate.
    let p1 = parse_query("q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)").unwrap();
    let mut subst = Substitution::new();
    subst.bind(Symbol::new("M1"), Term::var("M"));
    subst.bind(Symbol::new("C1"), Term::var("C"));
    let transformed = p1.apply(&subst).dedup_subgoals();
    let p2 = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)").unwrap();
    assert_eq!(transformed, p2);
    let exp = expand(&transformed, &views).unwrap();
    assert!(are_equivalent(&exp, &q));
}

/// Example 3.1: the chain of three LMRs, each properly containing the
/// previous.
#[test]
fn example_31_lmr_chain() {
    let q = parse_query("q(X, Y, Z) :- e1(X, c), e2(Y, c), e3(Z, c)").unwrap();
    let views = parse_views("v(X, Y, Z, W) :- e1(X, W), e2(Y, W), e3(Z, W)").unwrap();
    let p1 = parse_query("q(X, Y, Z) :- v(X, Y, Z, c)").unwrap();
    let p2 = parse_query("q(X, Y, Z) :- v(X, Y, Z1, c), v(X1, Y1, Z, c)").unwrap();
    let p3 =
        parse_query("q(X, Y, Z) :- v(X, Y1, Z1, c), v(X2, Y, Z2, c), v(X3, Y3, Z, c)").unwrap();
    for p in [&p1, &p2, &p3] {
        assert!(is_locally_minimal(p, &q, &views));
    }
    assert!(is_contained_in(&p1, &p2) && !is_contained_in(&p2, &p1));
    assert!(is_contained_in(&p2, &p3) && !is_contained_in(&p3, &p2));
    // CoreCover finds the size-1 GMR (P1).
    let gmrs = CoreCover::new(&q, &views).run();
    assert_eq!(gmrs.rewritings().len(), 1);
    assert_eq!(gmrs.rewritings()[0].body.len(), 1);
}

/// Example 4.1 / Table 2: tuple-cores and the unique GMR.
#[test]
fn example_41_table_2() {
    let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
    let views = parse_views(
        "v1(A, B) :- a(A, B), a(B, B).\n\
         v2(C, D) :- a(C, E), b(C, D).",
    )
    .unwrap();
    let qm = minimize(&q);
    let tuples = view_tuples(&qm, &views);
    // Sort by tuple: Table 2 specifies the core *per tuple*, not an
    // enumeration order.
    let mut cores: Vec<(String, Vec<usize>)> = tuples
        .iter()
        .map(|t| {
            (
                t.to_string(),
                tuple_core(&qm, t, &views).subgoals.into_iter().collect(),
            )
        })
        .collect();
    cores.sort();
    assert_eq!(
        cores,
        vec![
            ("v1(X, Z)".to_string(), vec![0, 1]),
            ("v1(Z, Z)".to_string(), vec![1]),
            ("v2(Z, Y)".to_string(), vec![2]),
        ]
    );
    let gmrs = CoreCover::new(&q, &views).run();
    let mut printed: Vec<String> = gmrs.rewritings().iter().map(|r| r.to_string()).collect();
    printed.sort();
    assert_eq!(printed, ["q(X, Y) :- v1(X, Z), v2(Z, Y)"]);
}

/// Example 4.2: MiniCon leaves redundant subgoals; CoreCover does not.
#[test]
fn example_42_corecover_vs_minicon() {
    let k = 4;
    let mut q_body = Vec::new();
    let mut v_body = Vec::new();
    for i in 1..=k {
        q_body.push(format!("a{i}(X, Z{i}), b{i}(Z{i}, Y)"));
        v_body.push(format!("a{i}(X, Z{i}), b{i}(Z{i}, Y)"));
    }
    let q = parse_query(&format!("q(X, Y) :- {}", q_body.join(", "))).unwrap();
    let mut views_src = format!("v(X, Y) :- {}.\n", v_body.join(", "));
    for i in 1..k {
        views_src.push_str(&format!("v{i}(X, Y) :- a{i}(X, Z), b{i}(Z, Y).\n"));
    }
    let views = parse_views(&views_src).unwrap();

    let cc = CoreCover::new(&q, &views).run();
    assert_eq!(cc.rewritings().len(), 1);
    assert_eq!(cc.rewritings()[0].to_string(), "q(X, Y) :- v(X, Y)");

    let mc = minicon_rewritings(&q, &views, true, 1000);
    assert!(!mc.is_empty());
    // Every MiniCon rewriting uses k literals — all redundant beyond one.
    assert!(mc.iter().all(|r| r.body.len() == k));
}

/// §4.2's remark: the car-loc-part GMR is P4, found by the minimum cover
/// {v4}.
#[test]
fn section_42_carlocpart_gmr() {
    let (q, views) = carlocpart();
    let result = CoreCover::new(&q, &views).run();
    let mut printed: Vec<String> = result.rewritings().iter().map(|r| r.to_string()).collect();
    printed.sort();
    assert_eq!(printed, ["q1(S, C) :- v4(M, a, C, S)"]);
    // The naive Theorem 3.1 baseline agrees.
    let naive = naive_gmrs(&q, &views);
    assert_eq!(naive.len(), 1);
    assert!(is_variant(&naive[0], &result.rewritings()[0]));
}

/// §5.1 / Lemma 5.1: P3 (with the filtering subgoal v3) can be cheaper
/// than P2 under M2 when v3 is selective.
#[test]
fn section_51_filtering_subgoal() {
    let (_q, views) = carlocpart();
    let mut base = Database::new();
    for m in 0..25i64 {
        base.insert("car", vec![Value::Int(m), Value::sym("a")]);
    }
    for c in 0..4i64 {
        base.insert("loc", vec![Value::sym("a"), Value::Int(c)]);
    }
    base.insert("part", vec![Value::Int(77), Value::Int(1), Value::Int(2)]);
    for s in 0..150i64 {
        base.insert(
            "part",
            vec![Value::Int(s), Value::Int(s % 25), Value::Int(99)],
        );
    }
    let vdb = materialize_views(&views, &base);
    let mut oracle = ExactOracle::new(&vdb);

    let p2 = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)").unwrap();
    let p3 = parse_query("q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)").unwrap();
    let (_, _, cost2) = optimal_m2_order(&p2.body, &mut oracle).unwrap();
    let (_, _, cost3) = optimal_m2_order(&p3.body, &mut oracle).unwrap();
    assert!(
        cost3 < cost2,
        "selective v3 must make P3 cheaper ({cost3} vs {cost2})"
    );
}

/// §8's closing example: rewritings as unions of conjunctive queries are
/// future work, but the single-CQ rewriting P2 there (without built-in
/// predicates) type-checks through our machinery as a containment test.
#[test]
fn section_8_shape_check() {
    // Without the built-in predicate C ≤ D we can still verify that the
    // machinery handles the query shape (two r-literals with swapped
    // arguments resist folding).
    let q = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)").unwrap();
    let m = minimize(&q);
    assert_eq!(m.body.len(), 3, "r(U,W), r(W,U) must not fold");
}
