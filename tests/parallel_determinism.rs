//! The tentpole guarantee, property-tested: a parallel `CoreCover` run
//! returns byte-identical rewritings and stats to a serial one, on
//! random star and chain workloads, for any thread count.
//!
//! The comparison covers the printable outputs (rewritings, stats) —
//! everything the CLI, the sweeps, and downstream cost optimization
//! consume. Internal fresh-variable names inside tuple-core mappings may
//! differ run to run (the interner is shared), but no output depends on
//! them.

use proptest::prelude::*;
use viewplan::core::{CoreCover, CoreCoverConfig};
use viewplan::workload::{generate, WorkloadConfig};

fn run_with_threads(
    config: &WorkloadConfig,
    threads: usize,
    all_minimal: bool,
) -> (Vec<String>, viewplan::core::CoreCoverStats) {
    let w = generate(config);
    let cc = CoreCover::new(&w.query, &w.views).with_config(CoreCoverConfig {
        threads,
        ..CoreCoverConfig::default()
    });
    let result = if all_minimal {
        cc.run_all_minimal()
    } else {
        cc.run()
    };
    let rewritings: Vec<String> = result.rewritings().iter().map(|r| r.to_string()).collect();
    (rewritings, result.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_corecover_is_byte_identical_to_serial(
        views in 5usize..40,
        nondistinguished in 0usize..2,
        seed in 0u64..10_000,
        star in any::<bool>(),
        all_minimal in any::<bool>(),
    ) {
        let config = if star {
            WorkloadConfig::star(views, nondistinguished, seed)
        } else {
            WorkloadConfig::chain(views, nondistinguished, seed)
        };
        let serial = run_with_threads(&config, 1, all_minimal);
        for threads in [2usize, 8] {
            let par = run_with_threads(&config, threads, all_minimal);
            prop_assert_eq!(&par.0, &serial.0, "rewritings differ at threads = {}", threads);
            prop_assert_eq!(par.1, serial.1, "stats differ at threads = {}", threads);
        }
    }
}
