//! Property-based tests of the core invariants, over randomly generated
//! conjunctive queries.

use proptest::prelude::*;
use viewplan::prelude::*;

/// A strategy for small random conjunctive queries: up to `max_subgoals`
/// atoms over binary/ternary predicates with variables drawn from a small
/// pool (sharing emerges naturally), plus an occasional constant.
fn arb_query(max_subgoals: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    let term = prop_oneof![
        4 => (0..6usize).prop_map(|i| Term::var(&format!("X{i}"))),
        1 => (0..3usize).prop_map(|i| Term::cst(&format!("k{i}"))),
    ];
    let atom = ((0..4usize), prop::collection::vec(term, 1..=3))
        .prop_map(|(p, terms)| Atom::new(format!("p{}_{}", p, terms.len()).as_str(), terms));
    prop::collection::vec(atom, 1..=max_subgoals).prop_map(|body| {
        // Head: the (sorted) variables of the body, so the query is safe.
        let mut vars: Vec<Symbol> = Vec::new();
        for a in &body {
            for v in a.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        // Keep roughly half the variables distinguished (deterministically).
        let head_terms: Vec<Term> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, &v)| Term::Var(v))
            .collect();
        ConjunctiveQuery::new(Atom::new("q", head_terms), body)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimization preserves equivalence and is idempotent.
    #[test]
    fn minimize_is_sound_and_idempotent(q in arb_query(5)) {
        let m = minimize(&q);
        prop_assert!(are_equivalent(&q, &m));
        let mm = minimize(&m);
        prop_assert_eq!(m.body.len(), mm.body.len());
    }

    /// Containment is reflexive; equivalence is symmetric.
    #[test]
    fn containment_reflexive(q in arb_query(4)) {
        prop_assert!(is_contained_in(&q, &q));
        prop_assert!(are_equivalent(&q, &q));
    }

    /// Dropping a subgoal only weakens a query.
    #[test]
    fn dropping_subgoals_weakens(q in arb_query(5)) {
        for i in 0..q.body.len() {
            if q.body.len() == 1 { break; }
            let weaker = q.without_subgoal(i);
            if weaker.is_safe() {
                prop_assert!(is_contained_in(&q, &weaker));
            }
        }
    }

    /// Variants are equivalent, and variant-ness is symmetric.
    #[test]
    fn variants_are_equivalent(q in arb_query(4)) {
        // Rename all variables consistently.
        let mut subst = Substitution::new();
        for (i, v) in q.variables().into_iter().enumerate() {
            subst.bind(v, Term::var(&format!("Y{i}")));
        }
        let renamed = q.apply(&subst);
        prop_assert!(is_variant(&q, &renamed));
        prop_assert!(is_variant(&renamed, &q));
        prop_assert!(are_equivalent(&q, &renamed));
    }

    /// The canonical-database property: Q(D_Q) contains the frozen head.
    #[test]
    fn canonical_database_contains_frozen_head(q in arb_query(5)) {
        let db = canonical_database(&q);
        let ans = evaluate(&q, &db);
        let frozen: Vec<Value> = q
            .head
            .terms
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Value::Frozen(v),
                Term::Const(c) => Value::from_constant(c),
            })
            .collect();
        prop_assert!(ans.contains(&frozen));
    }

    /// Chandra–Merlin, checked against the engine: Q1 ⊑ Q2 iff Q2's answer
    /// over Q1's canonical database contains Q1's frozen head.
    #[test]
    fn containment_agrees_with_canonical_database(
        q1 in arb_query(4),
        q2 in arb_query(4),
    ) {
        // Align heads (containment requires same head shape).
        prop_assume!(q1.head.arity() == q2.head.arity());
        let q2 = ConjunctiveQuery::new(q1.head.clone(), q2.body.clone());
        prop_assume!(q2.is_safe());
        let db = canonical_database(&q1);
        let frozen: Vec<Value> = q1
            .head
            .terms
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Value::Frozen(v),
                Term::Const(c) => Value::from_constant(c),
            })
            .collect();
        let semantic = evaluate(&q2, &db).contains(&frozen);
        prop_assert_eq!(is_contained_in(&q1, &q2), semantic);
    }

    /// Engine evaluation is join-order independent.
    #[test]
    fn evaluation_is_order_independent(q in arb_query(4), seed in 0u64..100) {
        let rels = random_database(&q, 20, 4, seed);
        let mut db = Database::new();
        for (name, rows) in rels {
            for row in rows {
                db.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let a = evaluate(&q, &db);
        let mut reversed = q.clone();
        reversed.body.reverse();
        let b = evaluate(&reversed, &db);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Workload soundness at scale: every CoreCover rewriting on a random
    /// chain workload stays equivalent after expansion.
    #[test]
    fn corecover_rewritings_expand_equivalently(seed in 0u64..200) {
        let w = generate(&WorkloadConfig::chain(10, 1, seed));
        let result = CoreCover::new(&w.query, &w.views).run();
        let qm = minimize(&w.query);
        for r in result.rewritings().iter().take(3) {
            let exp = expand(r, &w.views).unwrap();
            prop_assert!(are_equivalent(&exp, &qm), "{}", r);
        }
    }

    /// Tuple-cores are stable under recomputation (Lemma 4.2 uniqueness,
    /// exercised through the public API).
    #[test]
    fn tuple_cores_are_deterministic(seed in 0u64..200) {
        let w = generate(&WorkloadConfig::star(8, 1, seed));
        let qm = minimize(&w.query);
        let tuples = view_tuples(&qm, &w.views);
        for t in tuples.iter().take(6) {
            let a = tuple_core(&qm, t, &w.views);
            let b = tuple_core(&qm, t, &w.views);
            prop_assert_eq!(a.subgoals, b.subgoals);
        }
    }

    /// Generated workloads are free of static-analysis *errors* (VP001):
    /// the generator and the analyzer agree on what a well-formed
    /// problem is, across every shape.
    #[test]
    fn generated_workloads_are_diagnostic_error_free(seed in 0u64..150) {
        for config in [
            WorkloadConfig::star(6, 1, seed),
            WorkloadConfig::chain(6, 1, seed),
            WorkloadConfig::random(6, 1, seed),
        ] {
            let w = generate(&config);
            let mut src = format!("{}.\n", w.query);
            for v in w.views.iter() {
                src.push_str(&format!("{v}.\n"));
            }
            let program = viewplan::cq::parse_program(&src)
                .expect("generated workloads must parse back");
            let analysis =
                viewplan::analyze::analyze(&program, viewplan::analyze::Layout::Problem);
            prop_assert!(
                !analysis.has_errors(),
                "seed {seed}: {:?}",
                analysis.errors().collect::<Vec<_>>()
            );
        }
    }

    /// The VP006 pruning pre-pass is output-invariant: with an
    /// unmatchable view injected, CoreCover with pruning on and off
    /// renders byte-identical rewriting sets (both the globally-minimal
    /// and the all-minimal searches).
    #[test]
    fn view_pruning_is_output_invariant(seed in 0u64..100) {
        let w = generate(&WorkloadConfig::chain(8, 1, seed));
        // Append views the pruner must discard: a foreign predicate and
        // a self-join the (minimized) query cannot satisfy.
        let mut vsrc = String::new();
        for v in w.views.iter() {
            vsrc.push_str(&format!("{v}.\n"));
        }
        vsrc.push_str("zdead(A) :- zforeign(A, A).\n");
        let views = parse_views(&vsrc).expect("views render round-trips");

        let render = |prune: bool| {
            let config = CoreCoverConfig {
                prune_unusable_views: prune,
                ..CoreCoverConfig::default()
            };
            let gmr = CoreCover::new(&w.query, &views).with_config(config.clone()).run();
            let all = CoreCover::new(&w.query, &views)
                .with_config(config)
                .run_all_minimal();
            let fmt = |rs: &[ConjunctiveQuery]| -> String {
                rs.iter().map(|r| format!("{r}\n")).collect()
            };
            (fmt(gmr.rewritings()), fmt(all.rewritings()))
        };
        prop_assert_eq!(render(true), render(false));
    }
}
