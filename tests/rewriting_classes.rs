//! Figure 1 / Figure 2: the taxonomy of rewritings and the LMR partial
//! order, exercised end to end on the paper's examples.

use viewplan::core::lattice::is_minimal_as_query;
use viewplan::core::{is_containment_minimal, lmr_partial_order};
use viewplan::prelude::*;

fn carlocpart() -> (ConjunctiveQuery, ViewSet) {
    (
        parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap(),
        parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap(),
    )
}

/// Region 1 of Figure 1: minimal rewritings (no redundant subgoal as a
/// query). P3 lives here but not in region 2.
#[test]
fn figure1_region_minimal_but_not_lmr() {
    let (q, views) = carlocpart();
    let p3 = parse_query("q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)").unwrap();
    assert!(is_minimal_as_query(&p3));
    assert!(!is_locally_minimal(&p3, &q, &views));
    // Dropping v3 yields P2, which IS locally minimal.
    let p2 = p3.without_subgoal(0);
    assert!(is_locally_minimal(&p2, &q, &views));
}

/// Region 2 → 3: among the LMRs {P1, P2, P4, P5}, P2 and P4 are
/// containment-minimal; P1 is not (P2 ⊏ P1).
#[test]
fn figure1_regions_lmr_and_cmr() {
    let (q, views) = carlocpart();
    let lmrs: Vec<ConjunctiveQuery> = [
        "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)", // P1
        "q1(S, C) :- v1(M, a, C), v2(S, M, C)",                // P2
        "q1(S, C) :- v4(M, a, C, S)",                          // P4
        "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)", // P5
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    for p in &lmrs {
        assert!(is_locally_minimal(p, &q, &views), "{p}");
    }
    assert!(!is_containment_minimal(0, &lmrs)); // P1 contains P2
    assert!(is_containment_minimal(1, &lmrs)); // P2
    assert!(is_containment_minimal(2, &lmrs)); // P4
}

/// Figure 2(a): subgoal counts respect the containment order (Lemma 3.1:
/// contained LMR ⇒ no more subgoals).
#[test]
fn lemma31_containment_bounds_subgoal_count() {
    let (q, views) = carlocpart();
    let lmrs: Vec<ConjunctiveQuery> = [
        "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)",
        "q1(S, C) :- v1(M, a, C), v2(S, M, C)",
        "q1(S, C) :- v4(M, a, C, S)",
        "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    for p in &lmrs {
        assert!(is_locally_minimal(p, &q, &views));
    }
    for (i, j) in lmr_partial_order(&lmrs) {
        assert!(
            lmrs[i].body.len() <= lmrs[j].body.len(),
            "Lemma 3.1 violated: P{i} ⊏ P{j} but more subgoals"
        );
    }
}

/// §3.2's e(X,X) example: region 6 of Figure 1 is nonempty (a GMR that is
/// not a CMR), and region 5 contains a same-size GMR (Prop 3.1).
#[test]
fn figure1_region6_gmr_not_cmr() {
    let q = parse_query("q(X) :- e(X, X)").unwrap();
    let views = parse_views("v(A, B) :- e(A, A), e(A, B)").unwrap();
    let p1 = parse_query("q(X) :- v(X, B)").unwrap(); // GMR, not CMR
    let p2 = parse_query("q(X) :- v(X, X)").unwrap(); // GMR and CMR
    for p in [&p1, &p2] {
        assert!(is_locally_minimal(p, &q, &views));
        assert_eq!(p.body.len(), 1);
    }
    let lmrs = vec![p1.clone(), p2.clone()];
    assert!(!is_containment_minimal(0, &lmrs));
    assert!(is_containment_minimal(1, &lmrs));
    // Prop 3.1: the CMR P2 is contained in P1 with the same size.
    assert!(is_contained_in(&p2, &p1));
    assert_eq!(p1.body.len(), p2.body.len());
}

/// Example 3.1 generalized to chains of length m (the paper: "we can
/// generalize this example to m base relations … and get a partial order
/// of LMRs that is a chain of length m").
#[test]
fn example31_generalizes_to_longer_chains() {
    for m in 2..=4usize {
        let body: Vec<String> = (1..=m).map(|i| format!("e{i}(X{i}, c)")).collect();
        let head: Vec<String> = (1..=m).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let vbody: Vec<String> = (1..=m).map(|i| format!("e{i}(X{i}, W)")).collect();
        let views = parse_views(&format!(
            "v({}, W) :- {}",
            head.join(", "),
            vbody.join(", ")
        ))
        .unwrap();
        // LMR chain: k literals each keeping one coordinate, k = 1..m.
        let mut chain: Vec<ConjunctiveQuery> = Vec::new();
        for k in 1..=m {
            // k = 1 is the GMR v(X1..Xm, c); for k > 1 each literal keeps
            // a block of coordinates and fills the rest with fresh vars.
            let mut literals = Vec::new();
            for j in 0..k {
                let args: Vec<String> = (1..=m)
                    .map(|i| {
                        // literal j keeps coordinates i where i % k == j.
                        if (i - 1) % k == j {
                            format!("X{i}")
                        } else {
                            format!("F{j}_{i}")
                        }
                    })
                    .collect();
                literals.push(format!("v({}, c)", args.join(", ")));
            }
            let p = parse_query(&format!(
                "q({}) :- {}",
                head.join(", "),
                literals.join(", ")
            ))
            .unwrap();
            chain.push(p);
        }
        for p in &chain {
            assert!(is_locally_minimal(p, &q, &views), "m={m}: {p}");
        }
        let edges = lmr_partial_order(&chain);
        // The single-literal rewriting is below every longer one.
        for k in 1..m {
            assert!(edges.contains(&(0, k)), "m={m}: chain edge 0 ⊏ {k}");
        }
    }
}

/// CoreCover's GMRs are always inside the CMR region's size bound
/// (Prop 3.2: the CMRs contain a GMR, so no LMR can be smaller).
#[test]
fn gmrs_have_globally_minimum_size() {
    let (q, views) = carlocpart();
    let result = CoreCover::new(&q, &views).run();
    // Every GMR has the globally minimum size, so take the minimum rather
    // than relying on the enumeration order of the first one.
    let gmr_size = result
        .rewritings()
        .iter()
        .map(|r| r.body.len())
        .min()
        .expect("carlocpart has a rewriting");
    for src in [
        "q1(S, C) :- v1(M, a, C), v2(S, M, C)",
        "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)",
    ] {
        let p = parse_query(src).unwrap();
        assert!(is_locally_minimal(&p, &q, &views));
        assert!(p.body.len() >= gmr_size);
    }
}
