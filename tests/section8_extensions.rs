//! The paper's §8 closing example, end to end: when a view carries a
//! comparison predicate, equivalent rewritings become **unions of
//! conjunctive queries**, and a single-CQ rewriting with extra literals
//! can compete with a two-branch union.
//!
//! ```text
//! Q:  q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)
//! V1: v1(A, B, C, D) :- p(A, B), r(C, D), C ≤ D
//! V2: v2(E, F)       :- r(E, F)
//!
//! P1: q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)
//!     q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)
//! P2: q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)
//! ```

use viewplan::engine::{evaluate, Database, Relation, Value};
use viewplan::extended::{
    evaluate_conditional, evaluate_union, Comparison, ConditionalQuery, ConstraintSet, UnionQuery,
};
use viewplan::prelude::{parse_query, Term};

/// Materializes V1 (with its comparison) and V2 from the base relations.
fn materialize_section8_views(base: &Database) -> Database {
    let mut vdb = Database::new();
    // v1(A, B, C, D) :- p(A, B), r(C, D), C ≤ D.
    let v1_def = ConditionalQuery::new(
        parse_query("v1(A, B, C, D) :- p(A, B), r(C, D)").unwrap(),
        ConstraintSet::from_comparisons([Comparison::le(Term::var("C"), Term::var("D"))]),
    );
    vdb.set("v1".into(), evaluate_conditional(&v1_def, base));
    // v2(E, F) :- r(E, F).
    let v2_def = parse_query("v2(E, F) :- r(E, F)").unwrap();
    vdb.set("v2".into(), evaluate(&v2_def, base));
    vdb
}

fn p1() -> UnionQuery {
    UnionQuery::plain(vec![
        parse_query("q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)").unwrap(),
        parse_query("q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)").unwrap(),
    ])
}

fn p2() -> ConditionalQuery {
    ConditionalQuery::plain(
        parse_query("q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)").unwrap(),
    )
}

fn sample_base(seed: i64) -> Database {
    let mut base = Database::new();
    for i in 0..6 {
        base.insert(
            "p",
            vec![
                Value::Int((i * 7 + seed) % 10),
                Value::Int((i * 3 + seed) % 10),
            ],
        );
    }
    // r with both symmetric pairs and one-directional edges, plus loops.
    base.insert_int("r", &[&[1, 2], &[2, 1], &[3, 5], &[4, 4], &[9, 6]]);
    base
}

/// Both P1 and P2 compute exactly Q's answer over the materialized views —
/// the closed-world equivalence §8 asserts.
#[test]
fn p1_and_p2_compute_the_query_answer() {
    let q = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)").unwrap();
    for seed in 0..5 {
        let base = sample_base(seed);
        let direct = evaluate(&q, &base);
        let vdb = materialize_section8_views(&base);
        let via_p1 = evaluate_union(&p1(), &vdb);
        let via_p2 = evaluate_conditional(&p2(), &vdb);
        assert_eq!(direct, via_p1, "P1 disagrees (seed {seed})");
        assert_eq!(direct, via_p2, "P2 disagrees (seed {seed})");
    }
}

/// Neither single branch of P1 suffices: each misses the tuples whose
/// (U, W) ordering falls in the other branch — the union is essential.
#[test]
fn single_branches_of_p1_are_incomplete() {
    let q = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)").unwrap();
    let base = sample_base(1);
    let direct = evaluate(&q, &base);
    let vdb = materialize_section8_views(&base);
    let u = p1();
    let mut incomplete = 0;
    for b in &u.branches {
        let partial = evaluate_conditional(b, &vdb);
        assert!(subset(&partial, &direct), "branches stay contained");
        if partial.len() < direct.len() {
            incomplete += 1;
        }
    }
    // The symmetric r-pairs (1,2)/(2,1) appear with both orientations, so
    // each branch misses the orientation the other covers.
    assert!(incomplete >= 1, "at least one branch must be incomplete");
}

/// The paper's cost observation: P2 uses fewer conjunctive queries (1 vs
/// 2) but more view subgoals per query (3 vs 2) — under an M1-style count
/// neither dominates, which is exactly why §8 leaves the UCQ cost question
/// open.
#[test]
fn p1_vs_p2_cost_shapes() {
    let u = p1();
    let single = p2();
    assert_eq!(u.branches.len(), 2);
    assert!(u.branches.iter().all(|b| b.relational.body.len() == 2));
    assert_eq!(single.relational.body.len(), 3);
    // Total subgoal counts: P1 = 4 across branches, P2 = 3 in one query.
    let p1_total: usize = u.branches.iter().map(|b| b.relational.body.len()).sum();
    assert_eq!(p1_total, 4);
}

/// P2 exploits the closed world: v1 only *guards* nonemptiness of p ⋈ the
/// ordered r-pair, while the full r-information flows through v2 twice.
/// Removing either v2 literal breaks it.
#[test]
fn p2_needs_both_v2_literals() {
    let q = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)").unwrap();
    let base = sample_base(2);
    let direct = evaluate(&q, &base);
    let vdb = materialize_section8_views(&base);
    let broken =
        ConditionalQuery::plain(parse_query("q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W)").unwrap());
    let ans = evaluate_conditional(&broken, &vdb);
    assert!(ans.len() > direct.len(), "dropping r(W, U) must overshoot");
}

fn subset(a: &Relation, b: &Relation) -> bool {
    a.iter().all(|t| b.contains(t))
}
