//! End-to-end tests of `viewplan serve --listen` and `viewplan loadgen`:
//! the spawned binary speaking the length-prefixed frame protocol over a
//! real socket, DDL parity between the stdin and socket front-ends,
//! exit-code parity, and the `VIEWPLAN_FAULT` serving-fault points.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const VIEWS: &str = "v1(A, B) :- e(A, B).\nv2(A, B) :- f(A, B).\n";
const QUERY: &str = "q(X, Y) :- e(X, Y)";

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

/// A `viewplan serve --listen 127.0.0.1:0` child plus the address it
/// printed to stderr. Dropping without [`Server::shutdown`] kills the
/// child so a failing test never leaks a listener.
struct Server {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
}

impl Server {
    fn start(views_path: &std::path::Path, faults: Option<&str>, extra: &[&str]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_viewplan"));
        cmd.arg("serve")
            .arg(views_path)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        match faults {
            Some(f) => cmd.env("VIEWPLAN_FAULT", f),
            None => cmd.env_remove("VIEWPLAN_FAULT"),
        };
        let mut child = cmd.spawn().expect("failed to spawn viewplan serve");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let mut line = String::new();
        stderr.read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("expected a listening banner, got {line:?}"))
            .to_string();
        Server {
            child,
            addr,
            stderr,
        }
    }

    fn connect(&self) -> TcpStream {
        let conn = TcpStream::connect(&self.addr).expect("connect to spawned server");
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn.set_write_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn
    }

    /// Sends a `shutdown` frame and asserts the child drains and exits 0.
    fn shutdown(mut self) {
        let mut conn = self.connect();
        assert_eq!(roundtrip(&mut conn, "shutdown"), "bye");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exited with {status}");
        let mut rest = String::new();
        self.stderr.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("server stopped"), "stderr tail: {rest:?}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn send(conn: &mut TcpStream, payload: &str) {
    let frame = format!("{}\n{payload}", payload.len());
    conn.write_all(frame.as_bytes()).unwrap();
    conn.flush().unwrap();
}

/// Reads one frame; `None` when the server closed the connection.
fn recv(conn: &mut TcpStream) -> Option<String> {
    let mut len = 0usize;
    let mut digits = 0;
    loop {
        let mut byte = [0u8; 1];
        match conn.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {}
            Err(_) => return None,
        }
        match byte[0] {
            b'\n' if digits > 0 => break,
            d @ b'0'..=b'9' => {
                len = len * 10 + usize::from(d - b'0');
                digits += 1;
            }
            other => panic!("bad frame header byte 0x{other:02x}"),
        }
    }
    let mut payload = vec![0u8; len];
    conn.read_exact(&mut payload).ok()?;
    Some(String::from_utf8(payload).unwrap())
}

fn roundtrip(conn: &mut TcpStream, payload: &str) -> String {
    send(conn, payload);
    recv(conn).unwrap_or_else(|| panic!("connection dropped answering {payload:?}"))
}

#[test]
fn socket_serves_queries_and_ddl_end_to_end() {
    let views = temp_file("viewplan_net_views.vp", VIEWS);
    let server = Server::start(&views, None, &[]);
    let mut conn = server.connect();

    assert_eq!(roundtrip(&mut conn, "ping"), "pong epoch=0");
    let cold = roundtrip(&mut conn, &format!("query {QUERY}"));
    assert!(
        cold.starts_with("ok epoch=0 completeness=complete cached=false\n"),
        "{cold}"
    );
    assert!(cold.contains("v1(X, Y)"), "{cold}");
    let warm = roundtrip(&mut conn, "query q(U, W) :- e(U, W)");
    assert!(
        warm.starts_with("ok epoch=0 completeness=complete cached=true\n"),
        "{warm}"
    );

    // DDL over the same connection: epochs advance, traffic continues.
    let add = roundtrip(&mut conn, "add-view v3(A, B) :- e(A, B)");
    assert!(add.starts_with("ok epoch=1 views=3"), "{add}");
    let requeried = roundtrip(&mut conn, &format!("query {QUERY}"));
    assert!(requeried.starts_with("ok epoch=1 "), "{requeried}");
    let drop = roundtrip(&mut conn, "drop-view v3");
    assert!(drop.starts_with("ok epoch=2 views=2"), "{drop}");

    server.shutdown();
}

#[test]
fn socket_errors_are_structured_and_never_drop_the_connection() {
    let views = temp_file("viewplan_net_err_views.vp", VIEWS);
    let server = Server::start(&views, None, &[]);
    let mut conn = server.connect();

    // A validation failure carries the analyzer's diagnostic code.
    let bad = roundtrip(&mut conn, "query q(X) :- e(X, X, X)");
    assert!(bad.starts_with("error code=2 vp=VP001 "), "{bad}");
    let parse = roundtrip(&mut conn, "query q(X) :- ");
    assert!(parse.starts_with("error code=2 parse error:"), "{parse}");
    let unknown = roundtrip(&mut conn, "frobnicate");
    assert!(
        unknown.starts_with("error code=2 unknown command"),
        "{unknown}"
    );
    let dup = roundtrip(&mut conn, "add-view v1(A, B) :- e(A, B)");
    assert!(
        dup.starts_with("error code=2 view `v1` already exists"),
        "{dup}"
    );
    // The same connection still answers after every error above.
    assert_eq!(roundtrip(&mut conn, "ping"), "pong epoch=0");

    server.shutdown();
}

#[test]
fn stdin_and_socket_front_ends_print_identical_ddl_acks() {
    let views = temp_file("viewplan_net_parity_views.vp", VIEWS);

    // Socket: add then drop, capturing both acknowledgements.
    let server = Server::start(&views, None, &[]);
    let mut conn = server.connect();
    let _ = roundtrip(&mut conn, &format!("query {QUERY}"));
    let socket_add = roundtrip(&mut conn, "add-view v3(A, B) :- e(A, B)");
    let socket_drop = roundtrip(&mut conn, "drop-view v3");
    server.shutdown();

    // Stdin: the same request sequence, one line per request.
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .arg("serve")
        .arg(&views)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("VIEWPLAN_FAULT")
        .spawn()
        .map(|mut child| {
            child
                .stdin
                .take()
                .unwrap()
                .write_all(
                    format!("{QUERY}.\nadd-view v3(A, B) :- e(A, B)\ndrop-view v3\n").as_bytes(),
                )
                .unwrap();
            child.wait_with_output().unwrap()
        })
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&socket_add),
        "stdin ack differs from socket ack {socket_add:?}:\n{stdout}"
    );
    assert!(
        stdout.contains(&socket_drop),
        "stdin ack differs from socket ack {socket_drop:?}:\n{stdout}"
    );
}

#[test]
fn both_front_ends_reject_a_bad_views_file_with_exit_code_2() {
    // VP001 inside the view set: the arity of e/2 vs e/3 conflicts.
    let bad = temp_file(
        "viewplan_net_bad_views.vp",
        "v1(A, B) :- e(A, B).\nv2(A) :- e(A, A, A).\n",
    );
    for listen in [false, true] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_viewplan"));
        cmd.arg("serve").arg(&bad).stdin(Stdio::null());
        if listen {
            cmd.args(["--listen", "127.0.0.1:0"]);
        }
        let out = cmd.output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "listen={listen} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("VP001"));
    }
}

/// One serving fault per point: the affected request (at most) fails or
/// the connection closes, the *next* attempt succeeds, and the server
/// stays healthy throughout — no hang, no crash, no silent wrong answer.
#[test]
fn injected_serving_faults_degrade_one_request_then_recover() {
    for fault in ["accept:1", "read:1", "write:1"] {
        let views = temp_file(
            &format!("viewplan_net_fault_{}", fault.replace(':', "_")),
            VIEWS,
        );
        let server = Server::start(&views, Some(fault), &[]);
        // The faulted attempt: the stream may be dropped at accept, after
        // the read, or before the write — all surface as a lost
        // connection, never a corrupt frame.
        {
            let mut conn = server.connect();
            send(&mut conn, "ping");
            let _ = recv(&mut conn); // None (dropped) or a late pong — both fine
        }
        // Recovery: a fresh connection works; the one-shot fault is spent.
        let mut conn = server.connect();
        assert_eq!(
            roundtrip(&mut conn, "ping"),
            "pong epoch=0",
            "after {fault}"
        );
        let answer = roundtrip(&mut conn, &format!("query {QUERY}"));
        assert!(answer.starts_with("ok epoch=0 "), "after {fault}: {answer}");
        server.shutdown();
    }
}

#[test]
fn injected_swap_fault_fails_one_ddl_and_preserves_the_old_epoch() {
    let views = temp_file("viewplan_net_fault_swap.vp", VIEWS);
    let server = Server::start(&views, Some("swap:1"), &[]);
    let mut conn = server.connect();

    let failed = roundtrip(&mut conn, "add-view v3(A, B) :- e(A, B)");
    assert!(failed.starts_with("error code=2 "), "{failed}");
    // The failed swap left the catalog on the old epoch, still serving.
    assert_eq!(roundtrip(&mut conn, "ping"), "pong epoch=0");
    let answer = roundtrip(&mut conn, &format!("query {QUERY}"));
    assert!(answer.starts_with("ok epoch=0 "), "{answer}");
    // The retry succeeds: the one-shot fault was consumed.
    let retried = roundtrip(&mut conn, "add-view v3(A, B) :- e(A, B)");
    assert!(retried.starts_with("ok epoch=1 views=3"), "{retried}");

    server.shutdown();
}

#[test]
fn loadgen_cli_accounts_for_every_request() {
    let views = temp_file("viewplan_net_loadgen_views.vp", VIEWS);
    let queries = temp_file(
        "viewplan_net_loadgen_queries.vp",
        "q(X, Y) :- e(X, Y).\nq(X, Y) :- f(X, Y).\n",
    );
    let server = Server::start(&views, None, &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .arg("loadgen")
        .arg(&queries)
        .args([
            "--connect",
            &server.addr,
            "--clients",
            "3",
            "--requests",
            "8",
        ])
        .env_remove("VIEWPLAN_FAULT")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("24 offered"), "{stdout}");
    assert!(stdout.contains("24 ok"), "{stdout}");
    server.shutdown();
}

#[test]
fn loadgen_without_a_server_fails_cleanly() {
    let queries = temp_file("viewplan_net_orphan_queries.vp", "q(X, Y) :- e(X, Y).\n");
    // A bound-then-dropped listener yields a port nothing listens on.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let out = Command::new(env!("CARGO_BIN_EXE_viewplan"))
        .arg("loadgen")
        .arg(&queries)
        .args([
            "--connect",
            &format!("127.0.0.1:{port}"),
            "--clients",
            "1",
            "--requests",
            "2",
            "--max-retries",
            "1",
        ])
        .env_remove("VIEWPLAN_FAULT")
        .output()
        .unwrap();
    // Every request fails after retries: reported honestly, and the
    // accounting identity still closes (failed-after-retries bucket).
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(
        stdout.contains("failed after exhausting retries"),
        "{stdout}"
    );
}
