//! Repo-level lints for the `viewplan` workspace, run as
//! `cargo run -p xtask -- lint` (and in CI).
//!
//! Nine checks, all offline and purely textual:
//!
//! 1. **Panic ban** — no `.unwrap()` / `.expect(` / `panic!(` in library
//!    crates (`crates/*/src`) outside `#[cfg(test)]` code. Audited
//!    remainders live in `xtask/lint-allowlist.txt` as `path count`
//!    lines; the check is a *ratchet*: a file over its allowance fails,
//!    and a file under it also fails until the allowance is lowered, so
//!    the debt can only shrink.
//! 2. **Counter uniqueness** — every `obs::counter!("name")` name is
//!    registered at exactly one non-test source site, so a counter's
//!    meaning has a single owner (`crates/*/src` + the CLI in `src/`).
//! 3. **Histogram uniqueness** — the same single-owner rule for every
//!    `obs::histogram!("name")` site, so a distribution's samples (and
//!    their unit) cannot fork across recorders.
//! 4. **Trace-event uniqueness** — same single-owner rule for every
//!    `obs::trace_event!("name", …)` site, so a trace event's meaning
//!    (and its attribute schema) cannot silently fork across emitters.
//! 5. **Golden pairing** — every `tests/golden/*.vp` fixture is
//!    exercised by `tests/golden_corpus.rs`, and every snapshot under
//!    `tests/golden/expected/` corresponds to a test there (no orphaned
//!    fixtures, no dead snapshots).
//! 6. **Justified allows** — every `#[allow(...)]` carries a
//!    justification comment on the same line or the line above.
//! 7. **Ordering discipline** — every atomic `Ordering::…` site outside
//!    the `viewplan-sync` facade carries an `// ordering:` comment
//!    explaining why that memory ordering suffices, on the same line or
//!    in the comment block directly above (one block may cover a run of
//!    consecutive atomic operations). Unjustified remainders live in
//!    `xtask/sync-allowlist.txt` under the same ratchet discipline as
//!    the panic ban, so the audit debt can only shrink.
//! 8. **Raw-sync ban** — `std::thread`, `parking_lot`, and the blocking
//!    `std::sync` primitives (`Mutex`, `RwLock`, `Condvar`, `mpsc`,
//!    `atomic`, …) are banned outside `crates/sync/src` and test code:
//!    all synchronization goes through the `viewplan-sync` facade so the
//!    interleaving model checker sees every yield point. `Arc`,
//!    `OnceLock`, and `Weak` are exempt (no blocking, no ordering
//!    choices).
//! 9. **Lock order** — a function that textually acquires two or more
//!    locks (`.lock()` / `.read()` / `.write()`) must carry a
//!    `// lock-order:` comment documenting the acquisition order, so
//!    every potential nesting has a written deadlock argument.
//!
//! The scans work on a *stripped* view of each file: comment and string
//! contents are blanked (structure and braces preserved), so `"panic!"`
//! in a doc comment or a string never trips a lint. `#[cfg(test)]`
//! items are skipped by brace matching. The vendored dependency shims
//! under `stubs/` are out of scope — they mirror external APIs.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The outcome of a lint run: human-readable violations, empty = clean.
#[derive(Debug, Default)]
pub struct LintReport {
    /// One line per violation.
    pub violations: Vec<String>,
}

impl LintReport {
    /// True iff the repo is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replaces the contents of comments (line, nested block) and literals
/// (strings, raw strings, chars) with spaces, preserving the line
/// structure and all code characters — so later scans can match tokens
/// and count braces without a real parser.
pub fn strip_code(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let keep_or_blank = |b: u8| if b == b'\n' { b'\n' } else { b' ' };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(keep_or_blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string: r"…", r#"…"#, r##"…"##, …
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.extend(std::iter::repeat_n(b' ', j + 1 - start));
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                i += hashes + 1;
                                break 'raw;
                            }
                        }
                        out.push(keep_or_blank(bytes[i]));
                        i += 1;
                    }
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.extend([b' ', b' ']);
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b => {
                            out.push(keep_or_blank(b));
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{1F600}') vs lifetime ('a).
                let lit_end = if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                        j += 1;
                    }
                    (bytes.get(j) == Some(&b'\'')).then_some(j)
                } else {
                    (bytes.get(i + 2) == Some(&b'\'')).then_some(i + 2)
                };
                match lit_end {
                    Some(end) => {
                        out.extend(std::iter::repeat_n(b' ', end + 1 - i));
                        i = end + 1;
                    }
                    None => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Marks, per line of `stripped`, whether it belongs to a
/// `#[cfg(test)]` item (attribute line included), by matching the brace
/// block that follows the attribute.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                // A `#[cfg(test)] use …;` style item ends at the first
                // `;` before any brace opens.
                if !opened && lines[j].contains(';') {
                    break;
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// The library source roots the panic ban covers: every `crates/*/src`.
fn library_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                out.push(src);
            }
        }
    }
    out.sort();
    out
}

/// Counts banned panic sites (`.unwrap()`, `.expect(`, `panic!(`) on the
/// non-test lines of a stripped file. `self.expect(` is excluded: the
/// parsers in this workspace define their own fallible `expect` helper
/// returning `Result`, which is exactly the pattern the ban pushes
/// toward.
pub fn count_panic_sites(stripped: &str) -> usize {
    let mask = test_region_mask(stripped);
    stripped
        .lines()
        .zip(&mask)
        .filter(|&(_, &in_test)| !in_test)
        .map(|(line, _)| {
            line.matches(".unwrap()").count()
                + line.matches(".expect(").count()
                + line.matches("panic!(").count()
                - line.matches("self.expect(").count()
        })
        .sum()
}

/// Parses `xtask/lint-allowlist.txt`: `path count` per line, `#`
/// comments. Paths are relative to the repo root.
fn parse_allowlist(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("allowlist line {}: expected `path count`", no + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count:?}", no + 1))?;
        out.insert(path.to_string(), count);
    }
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Check 1: the `.unwrap()` / `.expect(` / `panic!(` ratchet over the
/// library crates.
fn check_panics(root: &Path, report: &mut LintReport) {
    let allowlist_path = root.join("xtask/lint-allowlist.txt");
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(a) => a,
            Err(e) => {
                report.violations.push(format!("lint-allowlist.txt: {e}"));
                return;
            }
        },
        Err(_) => BTreeMap::new(),
    };
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for src_root in library_roots(root) {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let count = count_panic_sites(&strip_code(&text));
            if count > 0 {
                seen.insert(rel(root, &file), count);
            }
        }
    }
    for (path, &actual) in &seen {
        let allowed = allowlist.get(path).copied().unwrap_or(0);
        if actual > allowed {
            report.violations.push(format!(
                "{path}: {actual} unwrap/expect/panic site(s) in non-test library code, \
                 allowlist permits {allowed} — return a typed error or justify with a \
                 debug_assert!, don't panic on user input"
            ));
        }
    }
    for (path, &allowed) in &allowlist {
        let actual = seen.get(path).copied().unwrap_or(0);
        if actual < allowed {
            report.violations.push(format!(
                "{path}: allowlist permits {allowed} panic site(s) but only {actual} remain — \
                 ratchet xtask/lint-allowlist.txt down"
            ));
        }
    }
}

/// Check 2: each `counter!("name")` name has exactly one non-test
/// registration site.
fn check_counter_uniqueness(root: &Path, report: &mut LintReport) {
    let mut sites: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            // Counter names live in string literals, so extract them from
            // the original text — but only on lines that are non-test,
            // non-comment code in the stripped view.
            let stripped = strip_code(&text);
            let mask = test_region_mask(&stripped);
            for ((line_no, original), (stripped_line, &in_test)) in
                text.lines().enumerate().zip(stripped.lines().zip(&mask))
            {
                if in_test || !stripped_line.contains("counter!(") {
                    continue;
                }
                let mut rest = original;
                while let Some(at) = rest.find("counter!(\"") {
                    let name_start = &rest[at + "counter!(\"".len()..];
                    if let Some(end) = name_start.find('"') {
                        sites
                            .entry(name_start[..end].to_string())
                            .or_default()
                            .push(format!("{}:{}", rel(root, &file), line_no + 1));
                        rest = &name_start[end..];
                    } else {
                        break;
                    }
                }
            }
        }
    }
    for (name, at) in sites {
        if at.len() > 1 {
            report.violations.push(format!(
                "counter {name:?} is registered at {} sites ({}) — funnel all increments \
                 through one helper so the name has a single owner",
                at.len(),
                at.join(", ")
            ));
        }
    }
}

/// Check 2b: each `histogram!("name")` name has exactly one non-test
/// registration site — same ownership rule as counters, so a latency
/// distribution is never split across call sites with different units.
fn check_histogram_uniqueness(root: &Path, report: &mut LintReport) {
    let mut sites: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let stripped = strip_code(&text);
            let mask = test_region_mask(&stripped);
            for ((line_no, original), (stripped_line, &in_test)) in
                text.lines().enumerate().zip(stripped.lines().zip(&mask))
            {
                if in_test || !stripped_line.contains("histogram!(") {
                    continue;
                }
                let mut rest = original;
                while let Some(at) = rest.find("histogram!(\"") {
                    let name_start = &rest[at + "histogram!(\"".len()..];
                    if let Some(end) = name_start.find('"') {
                        sites
                            .entry(name_start[..end].to_string())
                            .or_default()
                            .push(format!("{}:{}", rel(root, &file), line_no + 1));
                        rest = &name_start[end..];
                    } else {
                        break;
                    }
                }
            }
        }
    }
    for (name, at) in sites {
        if at.len() > 1 {
            report.violations.push(format!(
                "histogram {name:?} is recorded at {} sites ({}) — funnel all samples \
                 through one helper so the name (and its unit) has a single owner",
                at.len(),
                at.join(", ")
            ));
        }
    }
}

/// Check 3: each `trace_event!("name", …)` name has exactly one non-test
/// emission site. Unlike counters, trace events routinely span lines
/// (`trace_event!(` then the name on the next line), so the name may be
/// the first string literal on the *following* line.
fn check_trace_event_uniqueness(root: &Path, report: &mut LintReport) {
    let mut sites: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let stripped = strip_code(&text);
            let mask = test_region_mask(&stripped);
            let originals: Vec<&str> = text.lines().collect();
            for (line_no, (stripped_line, &in_test)) in stripped.lines().zip(&mask).enumerate() {
                if in_test || !stripped_line.contains("trace_event!(") {
                    continue;
                }
                let original = originals.get(line_no).copied().unwrap_or_default();
                let Some(at) = original.find("trace_event!(") else {
                    continue;
                };
                // The event name is the first string literal after the
                // macro's open paren — on this line, or (multi-line
                // invocation) leading the next line.
                let same_line = &original[at + "trace_event!(".len()..];
                let name = first_string_literal(same_line).or_else(|| {
                    originals
                        .get(line_no + 1)
                        .and_then(|next| first_string_literal(next.trim_start()))
                });
                if let Some(name) = name {
                    sites.entry(name).or_default().push(format!(
                        "{}:{}",
                        rel(root, &file),
                        line_no + 1
                    ));
                }
            }
        }
    }
    for (name, at) in sites {
        if at.len() > 1 {
            report.violations.push(format!(
                "trace event {name:?} is emitted at {} sites ({}) — funnel all emissions \
                 through one helper so the event (and its attribute schema) has a single owner",
                at.len(),
                at.join(", ")
            ));
        }
    }
}

/// The contents of the string literal that `text` starts with (after
/// optional whitespace), if any.
fn first_string_literal(text: &str) -> Option<String> {
    let rest = text.trim_start().strip_prefix('"')?;
    rest.find('"').map(|end| rest[..end].to_string())
}

/// Check 4: golden fixtures and snapshots pair up with the corpus tests.
fn check_golden_pairing(root: &Path, report: &mut LintReport) {
    let corpus = std::fs::read_to_string(root.join("tests/golden_corpus.rs")).unwrap_or_default();
    let list = |dir: &Path, ext: &str| -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == ext))
            .collect();
        v.sort();
        v
    };
    for fixture in list(&root.join("tests/golden"), "vp") {
        let path = rel(root, &fixture);
        if !corpus.contains(&path) {
            report.violations.push(format!(
                "{path}: golden fixture is not exercised by tests/golden_corpus.rs"
            ));
        }
    }
    for snapshot in list(&root.join("tests/golden/expected"), "txt") {
        let stem = snapshot
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !corpus.contains(&stem) {
            report.violations.push(format!(
                "{}: orphaned snapshot — no test named {stem:?} in tests/golden_corpus.rs",
                rel(root, &snapshot)
            ));
        }
    }
}

/// Check 5: every `#[allow(...)]` (or `#![allow(...)]`) carries a
/// justification comment on the same line or the line above.
fn check_justified_allows(root: &Path, report: &mut LintReport) {
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let stripped = strip_code(&text);
            let originals: Vec<&str> = text.lines().collect();
            for (line_no, stripped_line) in stripped.lines().enumerate() {
                if !stripped_line.contains("[allow(") {
                    continue;
                }
                let same_line = originals
                    .get(line_no)
                    .is_some_and(|l| l.contains("//") || l.contains("/*"));
                let line_above = line_no
                    .checked_sub(1)
                    .and_then(|i| originals.get(i))
                    .is_some_and(|l| {
                        let t = l.trim();
                        t.starts_with("//") || t.ends_with("*/")
                    });
                if !same_line && !line_above {
                    report.violations.push(format!(
                        "{}:{}: #[allow(...)] without a justification comment (same line or \
                         the line above)",
                        rel(root, &file),
                        line_no + 1
                    ));
                }
            }
        }
    }
}

/// The atomic memory-ordering tokens check 7 polices. `std::cmp::Ordering`
/// variants (`Less`, `Equal`, `Greater`) never match.
const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// True iff the stripped line performs an atomic operation with an
/// explicit memory ordering.
fn has_atomic_ordering(stripped_line: &str) -> bool {
    ATOMIC_ORDERINGS.iter().any(|t| stripped_line.contains(t))
}

/// True iff the facade source root (`crates/sync/src`) contains `file`.
/// The facade is where raw `std::sync` is *supposed* to live (check 8),
/// but its own `Ordering::…` constants still need justification.
fn in_sync_facade(root: &Path, file: &Path) -> bool {
    file.strip_prefix(root.join("crates/sync/src")).is_ok()
}

/// Counts the atomic-ordering sites on the non-test lines of a file
/// that lack an `// ordering:` justification. A justification counts if
/// it is on the same line, or reachable by walking upward through
/// consecutive lines that are comments or other atomic operations (so
/// one comment block may cover a run of related atomics).
pub fn count_unjustified_orderings(text: &str) -> usize {
    let stripped = strip_code(text);
    let mask = test_region_mask(&stripped);
    let originals: Vec<&str> = text.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let mut unjustified = 0;
    for (line_no, (&stripped_line, &in_test)) in stripped_lines.iter().zip(&mask).enumerate() {
        if in_test || !has_atomic_ordering(stripped_line) {
            continue;
        }
        let mut justified = originals
            .get(line_no)
            .is_some_and(|l| l.contains("ordering:"));
        let mut i = line_no;
        while !justified && i > 0 {
            i -= 1;
            let above = originals.get(i).copied().unwrap_or_default().trim();
            if above.starts_with("//") {
                justified = above.contains("ordering:");
                if justified {
                    break;
                }
            } else if !has_atomic_ordering(stripped_lines.get(i).copied().unwrap_or_default()) {
                break;
            }
        }
        if !justified {
            unjustified += 1;
        }
    }
    unjustified
}

/// Check 7: the `// ordering:` justification ratchet over every atomic
/// `Ordering::…` site (library crates, the facade itself, and the CLI).
fn check_ordering_justifications(root: &Path, report: &mut LintReport) {
    let allowlist_path = root.join("xtask/sync-allowlist.txt");
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(a) => a,
            Err(e) => {
                report.violations.push(format!("sync-allowlist.txt: {e}"));
                return;
            }
        },
        Err(_) => BTreeMap::new(),
    };
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let count = count_unjustified_orderings(&text);
            if count > 0 {
                seen.insert(rel(root, &file), count);
            }
        }
    }
    for (path, &actual) in &seen {
        let allowed = allowlist.get(path).copied().unwrap_or(0);
        if actual > allowed {
            report.violations.push(format!(
                "{path}: {actual} atomic Ordering site(s) without an `// ordering:` \
                 justification, sync-allowlist permits {allowed} — explain why the chosen \
                 memory ordering suffices (what the operation publishes, what tolerates \
                 staleness) on the same line or the comment block above"
            ));
        }
    }
    for (path, &allowed) in &allowlist {
        let actual = seen.get(path).copied().unwrap_or(0);
        if actual < allowed {
            report.violations.push(format!(
                "{path}: sync-allowlist permits {allowed} unjustified Ordering site(s) but \
                 only {actual} remain — ratchet xtask/sync-allowlist.txt down"
            ));
        }
    }
}

/// Check 8: raw synchronization primitives are confined to the
/// `viewplan-sync` facade (and test code). Everything else must go
/// through the facade so the model checker can interpose on every
/// acquisition, wait, and atomic access.
fn check_raw_sync_ban(root: &Path, report: &mut LintReport) {
    // `Arc`/`OnceLock`/`Weak` are exempt: no blocking, no ordering
    // choice to audit. Everything else under std::sync is facade-only.
    const BANNED_STD_SYNC: [&str; 11] = [
        "Mutex",
        "RwLock",
        "Condvar",
        "mpsc",
        "atomic",
        "Barrier",
        "Once",
        "PoisonError",
        "LockResult",
        "TryLockError",
        "WaitTimeoutResult",
    ];
    let banned_after_std_sync = |rest: &str| -> bool {
        if let Some(group) = rest.strip_prefix('{') {
            // `use std::sync::{Arc, Mutex};` — scan the group items.
            let group = group.split('}').next().unwrap_or(group);
            group
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|tok| BANNED_STD_SYNC.contains(&tok))
        } else {
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // `Once` must not swallow `OnceLock`.
            BANNED_STD_SYNC.contains(&ident.as_str())
        }
    };
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            if in_sync_facade(root, &file) {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let stripped = strip_code(&text);
            let mask = test_region_mask(&stripped);
            for (line_no, (line, &in_test)) in stripped.lines().zip(&mask).enumerate() {
                if in_test {
                    continue;
                }
                let mut offending = None;
                if line.contains("parking_lot") {
                    offending = Some("parking_lot");
                } else if line.contains("std::thread") {
                    offending = Some("std::thread");
                } else {
                    let mut rest = line;
                    while let Some(at) = rest.find("std::sync::") {
                        let after = &rest[at + "std::sync::".len()..];
                        if banned_after_std_sync(after) {
                            offending = Some("std::sync");
                            break;
                        }
                        rest = after;
                    }
                }
                if let Some(what) = offending {
                    report.violations.push(format!(
                        "{}:{}: raw {what} primitive outside the viewplan-sync facade — \
                         use viewplan_sync::{{Mutex, RwLock, Condvar, thread, mpsc, \
                         atomics}} so the interleaving model checker sees every yield point",
                        rel(root, &file),
                        line_no + 1
                    ));
                }
            }
        }
    }
}

/// Check 9: a function that textually acquires two or more locks needs a
/// written `// lock-order:` argument (within the function, or in the
/// three lines above its signature).
fn check_lock_order(root: &Path, report: &mut LintReport) {
    let mut roots = library_roots(root);
    roots.push(root.join("src"));
    for src_root in roots {
        for file in rust_files(&src_root) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let stripped = strip_code(&text);
            let mask = test_region_mask(&stripped);
            let originals: Vec<&str> = text.lines().collect();
            let lines: Vec<&str> = stripped.lines().collect();
            let mut line_no = 0;
            while line_no < lines.len() {
                let line = lines[line_no];
                let is_fn = !mask[line_no]
                    && (line.trim_start().starts_with("fn ")
                        || line.contains(" fn ")
                        || line.contains("\tfn "));
                if !is_fn {
                    line_no += 1;
                    continue;
                }
                // The function region runs from the signature to the
                // close of its first brace block (nested items included
                // — their lock sites count toward the enclosing fn,
                // which can only over-ask for a comment, never miss one).
                let mut depth = 0i64;
                let mut opened = false;
                let mut end = line_no;
                for (j, l) in lines.iter().enumerate().skip(line_no) {
                    for c in l.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    end = j;
                    // Trait-method declarations (`fn f(&self) -> T;`)
                    // end at a `;` before any brace opens.
                    if (!opened && l.contains(';')) || (opened && depth <= 0) {
                        break;
                    }
                }
                let acquisitions: usize = (line_no..=end)
                    .map(|j| {
                        lines[j].matches(".lock()").count()
                            + lines[j].matches(".read()").count()
                            + lines[j].matches(".write()").count()
                    })
                    .sum();
                if acquisitions >= 2 {
                    let documented = (line_no.saturating_sub(3)..=end)
                        .any(|j| originals.get(j).is_some_and(|l| l.contains("lock-order:")));
                    if !documented {
                        report.violations.push(format!(
                            "{}:{}: function acquires {acquisitions} locks with no \
                             `// lock-order:` comment — document the acquisition order \
                             (and why no path reverses it) in or above the function",
                            rel(root, &file),
                            line_no + 1
                        ));
                    }
                }
                line_no = end + 1;
            }
        }
    }
}

/// Runs every lint over the workspace at `root`.
pub fn run_lint(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    check_panics(root, &mut report);
    check_counter_uniqueness(root, &mut report);
    check_histogram_uniqueness(root, &mut report);
    check_trace_event_uniqueness(root, &mut report);
    check_golden_pairing(root, &mut report);
    check_justified_allows(root, &mut report);
    check_ordering_justifications(root, &mut report);
    check_raw_sync_ban(root, &mut report);
    check_lock_order(root, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch workspace on disk, deleted on drop.
    struct TempRepo {
        root: PathBuf,
    }

    impl TempRepo {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-lint-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(&root).expect("create temp repo");
            TempRepo { root }
        }

        fn write(&self, rel_path: &str, contents: &str) {
            let path = self.root.join(rel_path);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(path, contents).expect("write");
        }
    }

    impl Drop for TempRepo {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn strip_code_blanks_comments_strings_and_chars() {
        let src = r##"let s = "panic!(no)"; // .unwrap() here
let r = r#"also .expect( nothing"#; /* panic!( */
let c = '"'; let lt: &'static str = s;
real.unwrap();"##;
        let stripped = strip_code(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert_eq!(stripped.matches(".unwrap()").count(), 1);
        assert_eq!(stripped.matches(".expect(").count(), 0);
        assert_eq!(stripped.matches("panic!(").count(), 0);
        // Lifetimes survive stripping (not mistaken for char literals).
        assert!(stripped.contains("'static"));
    }

    #[test]
    fn test_region_mask_covers_cfg_test_modules_only() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { y.unwrap(); }\n\
                   }\n\
                   fn c() { z.unwrap(); }\n";
        let stripped = strip_code(src);
        let mask = test_region_mask(&stripped);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
        assert_eq!(count_panic_sites(&stripped), 2);
    }

    #[test]
    fn count_panic_sites_ignores_unwrap_or_variants() {
        let stripped = strip_code("a.unwrap_or(0); b.unwrap_or_default(); c.unwrap_or_else(f);");
        assert_eq!(count_panic_sites(&stripped), 0);
    }

    #[test]
    fn lint_fails_on_injected_unwrap_in_library_code() {
        let repo = TempRepo::new("injected-unwrap");
        repo.write(
            "crates/demo/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             #[cfg(test)]\n\
             mod tests { fn ok() { Some(1).unwrap(); } }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("crates/demo/src/lib.rs"));
        assert!(report.violations[0].contains("1 unwrap/expect/panic"));
    }

    #[test]
    fn lint_allowlist_permits_audited_sites_and_ratchets_down() {
        let repo = TempRepo::new("allowlist");
        repo.write(
            "crates/demo/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        repo.write(
            "xtask/lint-allowlist.txt",
            "# audited: f() is only called on Some in this demo\n\
             crates/demo/src/lib.rs 1\n",
        );
        assert!(run_lint(&repo.root).is_clean());

        // Debt shrank below the allowance: the ratchet demands tightening.
        repo.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("ratchet"));
    }

    #[test]
    fn lint_flags_duplicate_counter_registrations() {
        let repo = TempRepo::new("dup-counter");
        repo.write(
            "crates/demo/src/lib.rs",
            "fn a() { counter!(\"demo.hits\"); }\nfn b() { counter!(\"demo.hits\"); }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("demo.hits"));
        assert!(report.violations[0].contains("2 sites"));
    }

    #[test]
    fn lint_flags_duplicate_histogram_registrations() {
        let repo = TempRepo::new("dup-histogram");
        repo.write(
            "crates/demo/src/lib.rs",
            "fn a() { histogram!(\"demo.lat_us\").record(1); }\n\
             fn b() { histogram!(\"demo.lat_us\").record(2); }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { histogram!(\"demo.lat_us\"); } }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("demo.lat_us"));
        assert!(report.violations[0].contains("2 sites"));
    }

    #[test]
    fn lint_flags_duplicate_trace_events_across_line_shapes() {
        let repo = TempRepo::new("dup-trace-event");
        // One single-line site plus one multi-line site (name on the
        // next line) must still be seen as the same event; doc comments
        // and #[cfg(test)] code must not count as sites.
        repo.write(
            "crates/demo/src/lib.rs",
            "/// e.g. `obs::trace_event!(\"demo.fired\")` in a doc comment\n\
             fn a() { obs::trace_event!(\"demo.fired\", (\"n\", 1)); }\n\
             fn b() {\n\
                 obs::trace_event!(\n\
                     \"demo.fired\",\n\
                     (\"n\", 2)\n\
                 );\n\
             }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { obs::trace_event!(\"demo.fired\"); } }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("demo.fired"));
        assert!(report.violations[0].contains("2 sites"));
    }

    #[test]
    fn lint_flags_unpaired_golden_fixtures_and_orphan_snapshots() {
        let repo = TempRepo::new("golden");
        repo.write("tests/golden/used.vp", "q(X) :- e(X, Y).\n");
        repo.write("tests/golden/unused.vp", "q(X) :- e(X, Y).\n");
        repo.write("tests/golden/expected/used_rewrite.txt", "out\n");
        repo.write("tests/golden/expected/orphan.txt", "out\n");
        repo.write(
            "tests/golden_corpus.rs",
            "golden!(used_rewrite => [\"rewrite\", \"tests/golden/used.vp\"]);\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert!(report.violations.iter().any(|v| v.contains("unused.vp")));
        assert!(report.violations.iter().any(|v| v.contains("orphan.txt")));
    }

    #[test]
    fn lint_requires_justified_allows() {
        let repo = TempRepo::new("allows");
        repo.write(
            "crates/demo/src/lib.rs",
            "// the span type forces this signature\n\
             #[allow(clippy::too_many_arguments)]\n\
             pub fn ok() {}\n\
             #[allow(dead_code)]\n\
             pub fn bad() {}\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("lib.rs:4"));
    }

    #[test]
    fn lint_flags_unjustified_atomic_orderings() {
        let repo = TempRepo::new("ordering");
        // One justified site (comment block covering a run of atomics),
        // one bare site, one test-only site; `cmp::Ordering` and doc
        // comments must not count.
        repo.write(
            "crates/demo/src/lib.rs",
            "/// Sorts by `Ordering::Relaxed`-ish vibes (doc, not code).\n\
             fn ok(c: &AtomicU64) {\n\
                 // ordering: monotone tally; readers tolerate staleness.\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
             }\n\
             fn bad(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n\
             fn cmp(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\n\
             #[cfg(test)]\n\
             mod tests { fn t(c: &AtomicU64) { c.load(Ordering::SeqCst); } }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("crates/demo/src/lib.rs"));
        assert!(report.violations[0].contains("1 atomic Ordering site(s)"));
    }

    #[test]
    fn sync_allowlist_permits_audited_sites_and_ratchets_down() {
        let repo = TempRepo::new("sync-allowlist");
        repo.write(
            "crates/demo/src/lib.rs",
            "fn bad(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n",
        );
        repo.write(
            "xtask/sync-allowlist.txt",
            "# audited: pre-facade code, justification pending\n\
             crates/demo/src/lib.rs 1\n",
        );
        assert!(run_lint(&repo.root).is_clean());

        // The site gains its justification: the stale allowance must be
        // ratcheted out, not silently kept as headroom.
        repo.write(
            "crates/demo/src/lib.rs",
            "fn good(c: &AtomicU64) -> u64 {\n\
                 // ordering: pairs with the Release store in `publish`.\n\
                 c.load(Ordering::Acquire)\n\
             }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("ratchet xtask/sync-allowlist.txt down"));
    }

    #[test]
    fn lint_bans_raw_sync_outside_the_facade() {
        let repo = TempRepo::new("raw-sync");
        // Raw primitives in a library crate: banned. The same tokens in
        // the facade itself, in test code, or naming the exempt types
        // (Arc/OnceLock): allowed.
        repo.write(
            "crates/demo/src/lib.rs",
            "use std::sync::{Arc, Mutex};\n\
             fn f() { std::thread::sleep(d); }\n\
             fn g() -> std::sync::mpsc::Receiver<u32> { todo!() }\n\
             use std::sync::OnceLock;\n\
             /// Wraps a `std::sync::Mutex` (doc comment: not a site).\n\
             fn ok() {}\n\
             #[cfg(test)]\n\
             mod tests { use std::thread; fn t() { thread::yield_now(); } }\n",
        );
        repo.write(
            "crates/sync/src/lib.rs",
            "pub use std::sync::Mutex;\npub use std::thread;\n",
        );
        let report = run_lint(&repo.root);
        let raw: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.contains("viewplan-sync facade"))
            .collect();
        assert_eq!(raw.len(), 3, "{:?}", report.violations);
        assert!(raw.iter().all(|v| v.contains("crates/demo/src/lib.rs")));
        assert!(raw.iter().any(|v| v.contains("lib.rs:1")), "use-group site");
        assert!(
            raw.iter().any(|v| v.contains("lib.rs:2")),
            "std::thread site"
        );
        assert!(raw.iter().any(|v| v.contains("lib.rs:3")), "mpsc path site");
    }

    #[test]
    fn lint_requires_lock_order_comments_for_multi_lock_functions() {
        let repo = TempRepo::new("lock-order");
        repo.write(
            "crates/demo/src/lib.rs",
            "// lock-order: registry before each entry; writers take only\n\
             // their own entry, so the nesting cannot invert.\n\
             fn ok(&self) {\n\
                 let reg = self.registry.lock();\n\
                 for e in reg.iter() { e.state.lock().touch(); }\n\
             }\n\
             fn bad(&self) {\n\
                 let a = self.a.lock();\n\
                 let b = self.b.write();\n\
             }\n\
             fn single(&self) { self.a.lock().touch(); }\n\
             #[cfg(test)]\n\
             mod tests { fn t(&self) { x.lock(); y.lock(); } }\n",
        );
        let report = run_lint(&repo.root);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("lib.rs:7"));
        assert!(report.violations[0].contains("lock-order"));
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // CARGO_MANIFEST_DIR is <root>/xtask.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let report = run_lint(&root);
        assert!(
            report.is_clean(),
            "repo lint violations:\n{}",
            report.violations.join("\n")
        );
    }
}
