//! `cargo run -p xtask -- lint` — repo lints for the viewplan workspace.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            // The xtask manifest lives at <root>/xtask, so the workspace
            // root is its parent; this keeps the tool cwd-independent.
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .unwrap_or_else(|| Path::new("."));
            let report = xtask::run_lint(root);
            if report.is_clean() {
                println!("xtask lint: ok");
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("lint: {v}");
                }
                eprintln!("xtask lint: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}
